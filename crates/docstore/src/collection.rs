//! A collection: primary-key document storage plus secondary indexes.

use std::collections::BTreeMap;

use cryptext_common::hash::{FxHashMap, FxHashSet};
use cryptext_common::{Error, Result};

use crate::filter::Filter;
use crate::index::HashIndex;
use crate::value::Document;

/// Identifier of a document within its collection, assigned at insert.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct DocId(pub u64);

impl std::fmt::Display for DocId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Options for [`Collection::find_with`]: sorting and pagination.
#[derive(Debug, Clone, Default)]
pub struct FindOptions {
    /// Sort by this (dotted) field; `None` = id order.
    pub sort_by: Option<String>,
    /// Reverse the sort.
    pub descending: bool,
    /// Skip this many results.
    pub skip: usize,
    /// Return at most this many results (0 = unlimited).
    pub limit: usize,
}

impl FindOptions {
    /// Sort ascending by `field`.
    pub fn sorted_by(field: impl Into<String>) -> Self {
        FindOptions {
            sort_by: Some(field.into()),
            ..Default::default()
        }
    }

    /// Builder: descending order.
    pub fn desc(mut self) -> Self {
        self.descending = true;
        self
    }

    /// Builder: pagination.
    pub fn page(mut self, skip: usize, limit: usize) -> Self {
        self.skip = skip;
        self.limit = limit;
        self
    }
}

/// An in-memory collection of documents with hash indexes.
///
/// `Collection` is a plain data structure; concurrency and durability are
/// layered on by [`Database`](crate::db::Database), which serializes
/// mutations through the WAL.
#[derive(Debug, Default)]
pub struct Collection {
    name: String,
    docs: FxHashMap<u64, Document>,
    indexes: BTreeMap<String, HashIndex>,
    next_id: u64,
}

impl Collection {
    /// New empty collection.
    pub fn new(name: impl Into<String>) -> Self {
        Collection {
            name: name.into(),
            docs: FxHashMap::default(),
            indexes: BTreeMap::new(),
            next_id: 0,
        }
    }

    /// Collection name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the collection (rename-commit support; the database keeps
    /// the map key and this field in lockstep).
    pub(crate) fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when no documents are stored.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Next id that would be assigned (exposed for WAL bookkeeping).
    pub fn next_id(&self) -> u64 {
        self.next_id
    }

    /// Raise the id counter to at least `next_id` (snapshot restore: the
    /// counter may exceed the max live id when tail documents were deleted).
    pub fn bump_next_id(&mut self, next_id: u64) {
        self.next_id = self.next_id.max(next_id);
    }

    /// Insert a document, assigning the next id.
    pub fn insert(&mut self, doc: Document) -> DocId {
        let id = self.next_id;
        self.insert_with_id(id, doc);
        DocId(id)
    }

    /// Insert under an explicit id (WAL replay / snapshot load). Advances
    /// `next_id` past `id`. Replaces any existing document at `id`.
    pub fn insert_with_id(&mut self, id: u64, doc: Document) {
        if let Some(old) = self.docs.remove(&id) {
            for idx in self.indexes.values_mut() {
                idx.remove_doc(id, &old);
            }
        }
        for idx in self.indexes.values_mut() {
            idx.insert_doc(id, &doc);
        }
        self.docs.insert(id, doc);
        self.next_id = self.next_id.max(id + 1);
    }

    /// Fetch by id.
    pub fn get(&self, id: DocId) -> Option<&Document> {
        self.docs.get(&id.0)
    }

    /// Replace the document at `id`.
    pub fn update(&mut self, id: DocId, doc: Document) -> Result<()> {
        let old = self
            .docs
            .remove(&id.0)
            .ok_or_else(|| Error::not_found(format!("{}{id}", self.name)))?;
        for idx in self.indexes.values_mut() {
            idx.remove_doc(id.0, &old);
            idx.insert_doc(id.0, &doc);
        }
        self.docs.insert(id.0, doc);
        Ok(())
    }

    /// Delete by id; true when a document was removed.
    pub fn delete(&mut self, id: DocId) -> bool {
        match self.docs.remove(&id.0) {
            None => false,
            Some(old) => {
                for idx in self.indexes.values_mut() {
                    idx.remove_doc(id.0, &old);
                }
                true
            }
        }
    }

    /// Create a hash index over `field` (dotted paths allowed), backfilling
    /// existing documents. Idempotent.
    pub fn create_index(&mut self, field: impl Into<String>) {
        let field = field.into();
        if self.indexes.contains_key(&field) {
            return;
        }
        let mut idx = HashIndex::new(field.clone());
        for (&id, doc) in &self.docs {
            idx.insert_doc(id, doc);
        }
        self.indexes.insert(field, idx);
    }

    /// Is `field` indexed?
    pub fn has_index(&self, field: &str) -> bool {
        self.indexes.contains_key(field)
    }

    /// Names of indexed fields.
    pub fn index_fields(&self) -> Vec<String> {
        self.indexes.keys().cloned().collect()
    }

    /// Find matching documents (cloned), index-accelerated when the filter
    /// pins an indexed field via `Eq`/`In`. Results are sorted by id for
    /// determinism.
    pub fn find(&self, filter: &Filter) -> Vec<(DocId, Document)> {
        let mut out: Vec<(DocId, Document)> = self
            .find_ids(filter)
            .into_iter()
            .map(|id| (id, self.docs[&id.0].clone()))
            .collect();
        out.sort_by_key(|(id, _)| *id);
        out
    }

    /// Find matching document ids.
    pub fn find_ids(&self, filter: &Filter) -> Vec<DocId> {
        // Index acceleration path.
        if let Some((field, values)) = filter.index_probe() {
            if let Some(idx) = self.indexes.get(field) {
                let mut candidates: FxHashSet<u64> = FxHashSet::default();
                for v in values {
                    candidates.extend(idx.lookup(v));
                }
                let mut ids: Vec<DocId> = candidates
                    .into_iter()
                    .filter(|id| filter.matches(&self.docs[id]))
                    .map(DocId)
                    .collect();
                ids.sort_unstable();
                return ids;
            }
        }
        // Full scan.
        let mut ids: Vec<DocId> = self
            .docs
            .iter()
            .filter(|(_, doc)| filter.matches(doc))
            .map(|(&id, _)| DocId(id))
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Find with sort/skip/limit options. Sorting uses
    /// [`Value::cmp_total`](crate::value::Value::cmp_total) on the given
    /// field (documents missing the field sort first), with id as the
    /// deterministic tie-breaker.
    pub fn find_with(&self, filter: &Filter, opts: &FindOptions) -> Vec<(DocId, Document)> {
        let mut out = self.find(filter);
        if let Some(field) = &opts.sort_by {
            out.sort_by(|(ida, a), (idb, b)| {
                let ord = match (a.get(field), b.get(field)) {
                    (None, None) => std::cmp::Ordering::Equal,
                    (None, Some(_)) => std::cmp::Ordering::Less,
                    (Some(_), None) => std::cmp::Ordering::Greater,
                    (Some(x), Some(y)) => x.cmp_total(y),
                };
                let ord = if opts.descending { ord.reverse() } else { ord };
                ord.then(ida.cmp(idb))
            });
        }
        let end = if opts.limit == 0 {
            out.len()
        } else {
            (opts.skip + opts.limit).min(out.len())
        };
        let start = opts.skip.min(out.len());
        out.drain(..start);
        out.truncate(end.saturating_sub(start));
        out
    }

    /// Find the first match, if any (lowest id).
    pub fn find_one(&self, filter: &Filter) -> Option<(DocId, Document)> {
        self.find_ids(filter)
            .first()
            .map(|&id| (id, self.docs[&id.0].clone()))
    }

    /// Count matches without cloning documents.
    pub fn count(&self, filter: &Filter) -> usize {
        if matches!(filter, Filter::All) {
            return self.docs.len();
        }
        self.find_ids(filter).len()
    }

    /// Iterate all `(id, document)` pairs in unspecified order.
    pub fn scan(&self) -> impl Iterator<Item = (DocId, &Document)> {
        self.docs.iter().map(|(&id, doc)| (DocId(id), doc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn token_doc(token: &str, codes: Vec<&str>, count: i64) -> Document {
        Document::new()
            .with("token", token)
            .with(
                "codes",
                codes.into_iter().map(Value::from).collect::<Vec<_>>(),
            )
            .with("count", count)
    }

    #[test]
    fn insert_assigns_monotonic_ids() {
        let mut c = Collection::new("tokens");
        let a = c.insert(token_doc("the", vec!["TH000"], 1));
        let b = c.insert(token_doc("thee", vec!["TH000"], 1));
        assert_eq!(a, DocId(0));
        assert_eq!(b, DocId(1));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn get_update_delete_cycle() {
        let mut c = Collection::new("t");
        let id = c.insert(token_doc("dirty", vec!["DI630"], 1));
        assert_eq!(c.get(id).unwrap().get("token"), Some(&Value::from("dirty")));

        c.update(id, token_doc("dirty", vec!["DI630"], 5)).unwrap();
        assert_eq!(c.get(id).unwrap().get("count"), Some(&Value::Int(5)));

        assert!(c.delete(id));
        assert!(!c.delete(id), "double delete is false");
        assert_eq!(c.get(id), None);
    }

    #[test]
    fn update_missing_errors() {
        let mut c = Collection::new("t");
        assert!(c.update(DocId(42), Document::new()).is_err());
    }

    #[test]
    fn find_with_index_matches_scan() {
        let mut with_idx = Collection::new("a");
        let mut without = Collection::new("b");
        with_idx.create_index("codes");
        for (t, codes) in [
            ("the", vec!["TH000"]),
            ("thee", vec!["TH000"]),
            ("dirty", vec!["DI630"]),
            ("suic1de", vec!["SU243", "SU230"]),
        ] {
            with_idx.insert(token_doc(t, codes.clone(), 1));
            without.insert(token_doc(t, codes, 1));
        }
        for code in ["TH000", "DI630", "SU230", "SU243", "XX000"] {
            let f = Filter::eq("codes", code);
            assert_eq!(
                with_idx.find(&f),
                without.find(&f),
                "index and scan agree for {code}"
            );
        }
    }

    #[test]
    fn index_backfills_existing_docs() {
        let mut c = Collection::new("t");
        c.insert(token_doc("the", vec!["TH000"], 1));
        c.create_index("token");
        assert!(c.has_index("token"));
        let hits = c.find(&Filter::eq("token", "the"));
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn index_stays_consistent_through_update_delete() {
        let mut c = Collection::new("t");
        c.create_index("codes");
        let id = c.insert(token_doc("dirty", vec!["DI630"], 1));
        c.update(id, token_doc("dirty", vec!["DX999"], 1)).unwrap();
        assert!(
            c.find(&Filter::eq("codes", "DI630")).is_empty(),
            "old key gone"
        );
        assert_eq!(c.find(&Filter::eq("codes", "DX999")).len(), 1);
        c.delete(id);
        assert!(c.find(&Filter::eq("codes", "DX999")).is_empty());
    }

    #[test]
    fn find_ids_sorted_for_determinism() {
        let mut c = Collection::new("t");
        for i in 0..50 {
            c.insert(Document::new().with("v", (i % 5) as i64));
        }
        let ids = c.find_ids(&Filter::eq("v", 3i64));
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
        assert_eq!(ids.len(), 10);
    }

    #[test]
    fn find_one_and_count() {
        let mut c = Collection::new("t");
        c.insert(Document::new().with("x", 1i64));
        c.insert(Document::new().with("x", 1i64));
        c.insert(Document::new().with("x", 2i64));
        assert_eq!(c.count(&Filter::eq("x", 1i64)), 2);
        assert_eq!(c.count(&Filter::All), 3);
        let (id, _) = c.find_one(&Filter::eq("x", 1i64)).unwrap();
        assert_eq!(id, DocId(0), "lowest id wins");
        assert!(c.find_one(&Filter::eq("x", 99i64)).is_none());
    }

    #[test]
    fn indexed_find_equals_model_scan_under_random_ops() {
        // Deterministic mini-fuzz: random inserts/updates/deletes on an
        // indexed collection; after every step, the index-accelerated find
        // must agree with a naive full scan for several filters.
        use cryptext_common::SplitMix64;
        let mut rng = SplitMix64::new(0xD0C5);
        let mut c = Collection::new("t");
        c.create_index("code");
        let mut live: Vec<DocId> = Vec::new();
        for step in 0..400 {
            match rng.index(4) {
                0 | 1 => {
                    let id = c.insert(
                        Document::new()
                            .with("code", format!("C{}", rng.index(6)))
                            .with("n", (step % 10) as i64),
                    );
                    live.push(id);
                }
                2 => {
                    if let Some(&id) = rng.choose(&live) {
                        let _ = c.update(
                            id,
                            Document::new()
                                .with("code", format!("C{}", rng.index(6)))
                                .with("n", (step % 7) as i64),
                        );
                    }
                }
                _ => {
                    if !live.is_empty() {
                        let idx = rng.index(live.len());
                        let id = live.swap_remove(idx);
                        c.delete(id);
                    }
                }
            }
            // Compare indexed path to the model for every code value.
            for v in 0..6 {
                let f = Filter::eq("code", format!("C{v}"));
                let fast: Vec<DocId> = c.find_ids(&f);
                let mut slow: Vec<DocId> = c
                    .scan()
                    .filter(|(_, d)| f.matches(d))
                    .map(|(id, _)| id)
                    .collect();
                slow.sort_unstable();
                assert_eq!(fast, slow, "step {step}, code C{v}");
            }
        }
    }

    #[test]
    fn insert_with_id_advances_next_id_and_replaces() {
        let mut c = Collection::new("t");
        c.create_index("x");
        c.insert_with_id(10, Document::new().with("x", 1i64));
        assert_eq!(c.next_id(), 11);
        // Replaying the same id replaces and keeps the index consistent.
        c.insert_with_id(10, Document::new().with("x", 2i64));
        assert_eq!(c.len(), 1);
        assert!(c.find(&Filter::eq("x", 1i64)).is_empty());
        assert_eq!(c.find(&Filter::eq("x", 2i64)).len(), 1);
        let id = c.insert(Document::new());
        assert_eq!(id, DocId(11));
    }

    #[test]
    fn find_with_sorts_and_paginates() {
        let mut c = Collection::new("t");
        for (token, count) in [("a", 5i64), ("b", 2), ("c", 9), ("d", 2), ("e", 7)] {
            c.insert(Document::new().with("token", token).with("count", count));
        }
        let by_count = c.find_with(&Filter::All, &FindOptions::sorted_by("count"));
        let counts: Vec<i64> = by_count
            .iter()
            .map(|(_, d)| d.get("count").unwrap().as_int().unwrap())
            .collect();
        assert_eq!(counts, vec![2, 2, 5, 7, 9]);
        // Equal keys tie-break by id (b before d).
        assert_eq!(by_count[0].1.get("token").unwrap().as_str(), Some("b"));

        let top2 = c.find_with(
            &Filter::All,
            &FindOptions::sorted_by("count").desc().page(0, 2),
        );
        let tokens: Vec<&str> = top2
            .iter()
            .map(|(_, d)| d.get("token").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(tokens, vec!["c", "e"]);

        let skipped = c.find_with(&Filter::All, &FindOptions::sorted_by("count").page(3, 10));
        assert_eq!(skipped.len(), 2);
    }

    #[test]
    fn find_with_missing_sort_field_sorts_first() {
        let mut c = Collection::new("t");
        c.insert(Document::new().with("x", 1i64));
        c.insert(Document::new()); // no x
        let out = c.find_with(&Filter::All, &FindOptions::sorted_by("x"));
        assert!(out[0].1.get("x").is_none());
        assert!(out[1].1.get("x").is_some());
    }

    #[test]
    fn find_with_skip_past_end_is_empty() {
        let mut c = Collection::new("t");
        c.insert(Document::new().with("x", 1i64));
        let out = c.find_with(&Filter::All, &FindOptions::default().page(5, 3));
        assert!(out.is_empty());
    }

    #[test]
    fn create_index_is_idempotent() {
        let mut c = Collection::new("t");
        c.insert(Document::new().with("x", 1i64));
        c.create_index("x");
        c.create_index("x");
        assert_eq!(c.index_fields(), vec!["x".to_string()]);
        assert_eq!(c.find(&Filter::eq("x", 1i64)).len(), 1);
    }
}
