//! # cryptext-docstore
//!
//! An embedded document database — CrypText's MongoDB substitute.
//!
//! The paper stores everything in MongoDB (§III-F): the `H_k` hash maps,
//! per-token frequency metadata, crawler state and benchmark results. This
//! crate supplies those capabilities in-process with the shape a database
//! practitioner expects:
//!
//! * [`Value`]/[`Document`] — a BSON-like dynamic value model.
//! * [`Filter`] — a small query algebra (`Eq`, `In`, ranges, `Contains`,
//!   boolean combinators) with index-accelerated execution.
//! * [`Collection`] — primary-key storage plus secondary [hash
//!   indexes](index::HashIndex); indexing a field whose value is an array
//!   indexes *every element* (exactly how a token maps to several Soundex
//!   codes).
//! * [`Database`] — named collections, a write-ahead log with CRC-framed
//!   records, point-in-time [snapshots](snapshot), and crash recovery that
//!   replays the WAL over the latest snapshot and tolerates a torn tail.
//!
//! # Durability contract
//!
//! Every mutation is appended to the WAL before being applied in memory;
//! [`Database::checkpoint`] writes a snapshot atomically (temp file +
//! fsync + rename) and truncates the log. The precise guarantees:
//!
//! * **After `append` returns** — the record is flushed to the OS. A
//!   process crash cannot lose it; an OS/power crash can, unless
//!   [`WalSync::EveryAppend`] was chosen (then the append also `fsync`s
//!   and survives both). Appends are framed `[len][crc32][payload]`, so a
//!   crash mid-append leaves at worst a *torn tail*: recovery keeps the
//!   intact frame prefix and discards the tear — never a partial record.
//! * **After a torn write** — [`wal::read_wal`]/[`wal::read_frames`] stop
//!   at the first bad frame and report `truncated_tail`; reopening a
//!   writer ([`wal::FrameWriter::open`]) truncates the torn bytes *before*
//!   appending, so post-crash appends stay reachable. Nothing before the
//!   tear is ever lost; nothing after it is ever half-applied.
//! * **After `checkpoint` returns** — the snapshot file alone reconstructs
//!   the full state (collections, documents, id counters, index
//!   definitions) and has been `fsync`ed. A crash *between* the snapshot
//!   rename and the WAL truncation is benign: replaying the stale WAL over
//!   the new snapshot is idempotent (explicit document ids; inserts
//!   replace).
//! * **Rename as commit point** — [`Database::rename_collection`] is a
//!   single WAL record with replace semantics. Crash-safe bulk rebuilds
//!   write into a staging collection and rename over the live name; a
//!   reopen observes either the complete old state or the complete new
//!   one, never a mix.
//!
//! These properties are enforced by fault-injection tests (see
//! `cryptext_common::failpoint`) that kill or tear writes at every
//! boundary and assert recovery lands on a valid prefix state.

#![warn(missing_docs)]

pub mod collection;
pub mod db;
pub mod encoding;
pub mod filter;
pub mod index;
pub mod snapshot;
pub mod value;
pub mod wal;

pub use collection::{Collection, DocId, FindOptions};
pub use db::{Database, DbOptions, WalSync};
pub use filter::Filter;
pub use value::{Document, Value};
