//! # cryptext-docstore
//!
//! An embedded document database — CrypText's MongoDB substitute.
//!
//! The paper stores everything in MongoDB (§III-F): the `H_k` hash maps,
//! per-token frequency metadata, crawler state and benchmark results. This
//! crate supplies those capabilities in-process with the shape a database
//! practitioner expects:
//!
//! * [`Value`]/[`Document`] — a BSON-like dynamic value model.
//! * [`Filter`] — a small query algebra (`Eq`, `In`, ranges, `Contains`,
//!   boolean combinators) with index-accelerated execution.
//! * [`Collection`] — primary-key storage plus secondary [hash
//!   indexes](index::HashIndex); indexing a field whose value is an array
//!   indexes *every element* (exactly how a token maps to several Soundex
//!   codes).
//! * [`Database`] — named collections, a write-ahead log with CRC-framed
//!   records, point-in-time [snapshots](snapshot), and crash recovery that
//!   replays the WAL over the latest snapshot and tolerates a torn tail.
//!
//! Durability model: every mutation is appended to the WAL before being
//! applied in memory (`WalSync` chooses whether appends also `fsync`).
//! [`Database::checkpoint`] writes a snapshot atomically (temp file +
//! rename) and truncates the log.

#![warn(missing_docs)]

pub mod collection;
pub mod db;
pub mod encoding;
pub mod filter;
pub mod index;
pub mod snapshot;
pub mod value;
pub mod wal;

pub use collection::{Collection, DocId, FindOptions};
pub use db::{Database, DbOptions, WalSync};
pub use filter::Filter;
pub use value::{Document, Value};
