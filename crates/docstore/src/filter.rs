//! The query algebra.
//!
//! A deliberately small subset of Mongo-style matching: equality, set
//! membership, ranges over [`Value::cmp_total`], substring/element
//! containment, field existence, and boolean combinators. Collections
//! accelerate top-level `Eq`/`In` via hash indexes (see
//! [`Collection::find`](crate::collection::Collection::find)).

use crate::value::{Document, Value};

/// A predicate over documents.
#[derive(Debug, Clone, PartialEq)]
pub enum Filter {
    /// Matches every document.
    All,
    /// Field at dotted path equals value. For array fields, also matches
    /// when *any element* equals the value (Mongo semantics — this is what
    /// makes `codes: [..]` queryable by a single code).
    Eq(String, Value),
    /// Negated [`Filter::Eq`].
    Ne(String, Value),
    /// Field equals any of the listed values (array fields: any element).
    In(String, Vec<Value>),
    /// Field strictly less than value (total order).
    Lt(String, Value),
    /// Field less than or equal.
    Lte(String, Value),
    /// Field strictly greater.
    Gt(String, Value),
    /// Field greater than or equal.
    Gte(String, Value),
    /// String field contains the given substring, or array field contains
    /// the value as an element.
    Contains(String, Value),
    /// The field exists (any value, including null).
    Exists(String),
    /// Every sub-filter matches.
    And(Vec<Filter>),
    /// At least one sub-filter matches.
    Or(Vec<Filter>),
    /// Sub-filter does not match.
    Not(Box<Filter>),
}

impl Filter {
    /// Convenience constructor: `field == value`.
    pub fn eq(field: impl Into<String>, value: impl Into<Value>) -> Self {
        Filter::Eq(field.into(), value.into())
    }

    /// Convenience constructor: `field ∈ values`.
    pub fn is_in(field: impl Into<String>, values: Vec<Value>) -> Self {
        Filter::In(field.into(), values)
    }

    /// Does `doc` satisfy this filter?
    pub fn matches(&self, doc: &Document) -> bool {
        match self {
            Filter::All => true,
            Filter::Eq(path, v) => doc.get(path).is_some_and(|f| value_eq_or_elem(f, v)),
            Filter::Ne(path, v) => !doc.get(path).is_some_and(|f| value_eq_or_elem(f, v)),
            Filter::In(path, vs) => doc
                .get(path)
                .is_some_and(|f| vs.iter().any(|v| value_eq_or_elem(f, v))),
            Filter::Lt(path, v) => cmp_ok(doc, path, v, |o| o == std::cmp::Ordering::Less),
            Filter::Lte(path, v) => cmp_ok(doc, path, v, |o| o != std::cmp::Ordering::Greater),
            Filter::Gt(path, v) => cmp_ok(doc, path, v, |o| o == std::cmp::Ordering::Greater),
            Filter::Gte(path, v) => cmp_ok(doc, path, v, |o| o != std::cmp::Ordering::Less),
            Filter::Contains(path, v) => doc.get(path).is_some_and(|f| match (f, v) {
                (Value::Str(hay), Value::Str(needle)) => hay.contains(needle.as_str()),
                (Value::Array(items), needle) => items.iter().any(|i| i == needle),
                _ => false,
            }),
            Filter::Exists(path) => doc.get(path).is_some(),
            Filter::And(fs) => fs.iter().all(|f| f.matches(doc)),
            Filter::Or(fs) => fs.iter().any(|f| f.matches(doc)),
            Filter::Not(f) => !f.matches(doc),
        }
    }

    /// If this filter (or a conjunct of it) pins an indexable field to
    /// specific values, return `(field, candidate values)` for index
    /// acceleration. Conservative: only top-level `Eq`/`In`, or the first
    /// usable conjunct inside an `And`.
    pub(crate) fn index_probe(&self) -> Option<(&str, Vec<&Value>)> {
        match self {
            Filter::Eq(path, v) => Some((path.as_str(), vec![v])),
            Filter::In(path, vs) => Some((path.as_str(), vs.iter().collect())),
            Filter::And(fs) => fs.iter().find_map(|f| f.index_probe()),
            _ => None,
        }
    }
}

fn value_eq_or_elem(field: &Value, target: &Value) -> bool {
    if field == target {
        return true;
    }
    matches!(field, Value::Array(items) if items.iter().any(|i| i == target))
}

fn cmp_ok(
    doc: &Document,
    path: &str,
    v: &Value,
    pred: impl Fn(std::cmp::Ordering) -> bool,
) -> bool {
    doc.get(path).is_some_and(|f| pred(f.cmp_total(v)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Document {
        Document::new()
            .with("token", "demokRATs")
            .with("count", 12i64)
            .with("score", 0.75)
            .with("codes", vec!["DE56232", "DE5623"])
            .with("flagged", true)
    }

    #[test]
    fn eq_scalar_and_array_element() {
        assert!(Filter::eq("token", "demokRATs").matches(&doc()));
        assert!(!Filter::eq("token", "democrats").matches(&doc()));
        // Array field: Eq matches any element (Mongo semantics).
        assert!(Filter::eq("codes", "DE5623").matches(&doc()));
        assert!(!Filter::eq("codes", "XX000").matches(&doc()));
    }

    #[test]
    fn eq_missing_field_is_false_and_ne_true() {
        assert!(!Filter::eq("missing", 1i64).matches(&doc()));
        assert!(Filter::Ne("missing".into(), Value::Int(1)).matches(&doc()));
        assert!(Filter::Ne("count".into(), Value::Int(5)).matches(&doc()));
        assert!(!Filter::Ne("count".into(), Value::Int(12)).matches(&doc()));
    }

    #[test]
    fn in_filter() {
        let f = Filter::is_in("token", vec!["a".into(), "demokRATs".into()]);
        assert!(f.matches(&doc()));
        let f = Filter::is_in("codes", vec!["DE56232".into()]);
        assert!(f.matches(&doc()), "array membership through In");
        let f = Filter::is_in("token", vec![]);
        assert!(!f.matches(&doc()), "empty In matches nothing");
    }

    #[test]
    fn range_filters_use_total_order() {
        assert!(Filter::Lt("count".into(), Value::Int(13)).matches(&doc()));
        assert!(!Filter::Lt("count".into(), Value::Int(12)).matches(&doc()));
        assert!(Filter::Lte("count".into(), Value::Int(12)).matches(&doc()));
        assert!(Filter::Gt("score".into(), Value::Float(0.5)).matches(&doc()));
        assert!(
            Filter::Gte("score".into(), Value::Int(0)).matches(&doc()),
            "cross-type numeric"
        );
        assert!(!Filter::Gt("missing".into(), Value::Int(0)).matches(&doc()));
    }

    #[test]
    fn contains_substring_and_element() {
        assert!(Filter::Contains("token".into(), Value::Str("RAT".into())).matches(&doc()));
        assert!(!Filter::Contains("token".into(), Value::Str("rat".into())).matches(&doc()));
        assert!(Filter::Contains("codes".into(), Value::Str("DE5623".into())).matches(&doc()));
        assert!(!Filter::Contains("count".into(), Value::Str("1".into())).matches(&doc()));
    }

    #[test]
    fn exists_and_not() {
        assert!(Filter::Exists("flagged".into()).matches(&doc()));
        assert!(!Filter::Exists("nope".into()).matches(&doc()));
        assert!(Filter::Not(Box::new(Filter::Exists("nope".into()))).matches(&doc()));
    }

    #[test]
    fn boolean_combinators() {
        let f = Filter::And(vec![
            Filter::eq("flagged", true),
            Filter::Gt("count".into(), Value::Int(10)),
        ]);
        assert!(f.matches(&doc()));
        let f = Filter::Or(vec![
            Filter::eq("token", "nope"),
            Filter::eq("token", "demokRATs"),
        ]);
        assert!(f.matches(&doc()));
        assert!(Filter::And(vec![]).matches(&doc()), "empty And is true");
        assert!(!Filter::Or(vec![]).matches(&doc()), "empty Or is false");
        assert!(Filter::All.matches(&doc()));
    }

    #[test]
    fn index_probe_extraction() {
        let f = Filter::eq("token", "x");
        let (field, vals) = f.index_probe().unwrap();
        assert_eq!(field, "token");
        assert_eq!(vals.len(), 1);

        let f = Filter::And(vec![
            Filter::Gt("count".into(), Value::Int(0)),
            Filter::eq("token", "x"),
        ]);
        assert_eq!(
            f.index_probe().unwrap().0,
            "token",
            "probe found inside And"
        );

        assert!(Filter::Gt("count".into(), Value::Int(0))
            .index_probe()
            .is_none());
        assert!(Filter::All.index_probe().is_none());
    }

    #[test]
    fn nested_path_filters() {
        let d = Document::new().with(
            "meta",
            Value::Object(std::collections::BTreeMap::from([(
                "lang".to_string(),
                Value::Str("en".into()),
            )])),
        );
        assert!(Filter::eq("meta.lang", "en").matches(&d));
        assert!(!Filter::eq("meta.lang", "de").matches(&d));
    }
}
