//! Point-in-time snapshots.
//!
//! A snapshot is a single file capturing every collection (documents,
//! next-id counters, index definitions). Layout:
//!
//! ```text
//! magic "CXDB" | version u32 | body... | crc32(body) u32
//! body := n_collections u32, then per collection:
//!         name | next_id u64 | n_indexes u32, field*  | n_docs u64, (id u64, doc)*
//! ```
//!
//! Snapshots are written to a temporary file and atomically renamed into
//! place, so a crash during checkpointing leaves the previous snapshot
//! intact. Index *contents* are not serialized — they are rebuilt from the
//! documents on load, which keeps the format trivially forward-compatible
//! with index implementation changes.

use std::io::{Read, Write};
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use cryptext_common::failpoint::{self, FailAction};
use cryptext_common::{Error, Result};

use crate::collection::Collection;
use crate::encoding::{crc32, decode_document, encode_document, get_str, put_str};

const MAGIC: &[u8; 4] = b"CXDB";
const VERSION: u32 = 1;

/// Serialize `collections` into snapshot bytes.
pub fn encode_snapshot(collections: &[&Collection]) -> Vec<u8> {
    let mut body = BytesMut::with_capacity(4096);
    body.put_u32_le(collections.len() as u32);
    for coll in collections {
        put_str(&mut body, coll.name());
        body.put_u64_le(coll.next_id());
        let fields = coll.index_fields();
        body.put_u32_le(fields.len() as u32);
        for f in &fields {
            put_str(&mut body, f);
        }
        let docs: Vec<_> = coll.scan().collect();
        body.put_u64_le(docs.len() as u64);
        for (id, doc) in docs {
            body.put_u64_le(id.0);
            encode_document(doc, &mut body);
        }
    }

    let mut out = Vec::with_capacity(body.len() + 12);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&body);
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out
}

/// Parse snapshot bytes back into collections (indexes rebuilt).
pub fn decode_snapshot(data: &[u8]) -> Result<Vec<Collection>> {
    if data.len() < 12 {
        return Err(Error::corrupt("snapshot too small"));
    }
    if &data[..4] != MAGIC {
        return Err(Error::corrupt("bad snapshot magic"));
    }
    let version = u32::from_le_bytes(data[4..8].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(Error::corrupt(format!(
            "unsupported snapshot version {version}"
        )));
    }
    let body = &data[8..data.len() - 4];
    let stored_crc = u32::from_le_bytes(data[data.len() - 4..].try_into().expect("4 bytes"));
    if crc32(body) != stored_crc {
        return Err(Error::corrupt("snapshot crc mismatch"));
    }

    let mut buf = Bytes::copy_from_slice(body);
    if buf.remaining() < 4 {
        return Err(Error::corrupt("snapshot body truncated"));
    }
    let n_collections = buf.get_u32_le() as usize;
    // Corrupt (or crafted — the CRC is not tamper-proof) counts must
    // surface as `Err`, never as a sized allocation: each collection needs
    // at least its 24-byte fixed header, so a count beyond the remaining
    // bytes is impossible and `with_capacity` on it could abort the
    // process on allocation failure before any per-item bounds check runs.
    if n_collections > buf.remaining() {
        return Err(Error::corrupt(format!(
            "snapshot claims {n_collections} collections in {} bytes",
            buf.remaining()
        )));
    }
    let mut out = Vec::with_capacity(n_collections);
    for _ in 0..n_collections {
        let name = get_str(&mut buf)?;
        if buf.remaining() < 8 {
            return Err(Error::corrupt("snapshot collection header truncated"));
        }
        let next_id = buf.get_u64_le();
        if buf.remaining() < 4 {
            return Err(Error::corrupt("snapshot index header truncated"));
        }
        let n_indexes = buf.get_u32_le() as usize;
        // Same bound as above: every index field costs ≥ 4 bytes.
        if n_indexes > buf.remaining() {
            return Err(Error::corrupt(format!(
                "snapshot claims {n_indexes} indexes in {} bytes",
                buf.remaining()
            )));
        }
        let mut coll = Collection::new(name);
        let mut fields = Vec::with_capacity(n_indexes);
        for _ in 0..n_indexes {
            fields.push(get_str(&mut buf)?);
        }
        if buf.remaining() < 8 {
            return Err(Error::corrupt("snapshot doc count truncated"));
        }
        let n_docs = buf.get_u64_le() as usize;
        // Create indexes before inserts so they populate incrementally.
        for f in fields {
            coll.create_index(f);
        }
        for _ in 0..n_docs {
            if buf.remaining() < 8 {
                return Err(Error::corrupt("snapshot doc id truncated"));
            }
            let id = buf.get_u64_le();
            let doc = decode_document(&mut buf)?;
            coll.insert_with_id(id, doc);
        }
        // insert_with_id advances next_id past the max id; restore the
        // recorded counter if it was further ahead (deleted tail ids).
        if coll.next_id() < next_id {
            coll.bump_next_id(next_id);
        }
        out.push(coll);
    }
    if !buf.is_empty() {
        return Err(Error::corrupt("trailing bytes in snapshot"));
    }
    Ok(out)
}

/// Write a snapshot atomically: temp file in the same directory, fsync,
/// rename over `path`. A crash anywhere before the rename leaves the
/// previous snapshot untouched (at worst a stale `.tmp` file remains,
/// which the next successful write replaces).
pub fn write_snapshot(path: &Path, collections: &[&Collection]) -> Result<()> {
    let bytes = encode_snapshot(collections);
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        match failpoint::trigger("snapshot.write") {
            Some(FailAction::Kill) => return Err(failpoint::injected("snapshot.write")),
            Some(FailAction::Torn(k)) => {
                // Crash mid-write: a partial tmp file is left behind, the
                // live snapshot is untouched.
                f.write_all(&bytes[..k.min(bytes.len())])?;
                return Err(failpoint::injected("snapshot.write"));
            }
            Some(FailAction::Delay(ms)) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
            None => {}
        }
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    match failpoint::trigger("snapshot.rename") {
        Some(FailAction::Delay(ms)) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
        Some(_) => return Err(failpoint::injected("snapshot.rename")),
        None => {}
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Read a snapshot file; a missing file yields an empty collection set.
pub fn read_snapshot(path: &Path) -> Result<Vec<Collection>> {
    let mut data = Vec::new();
    match std::fs::File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut data)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e.into()),
    }
    decode_snapshot(&data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::Filter;
    use crate::value::Document;

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("cryptext-snap-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn build_collection() -> Collection {
        let mut c = Collection::new("tokens");
        c.create_index("codes");
        c.insert(
            Document::new()
                .with("token", "the")
                .with("codes", vec!["TH000"]),
        );
        c.insert(
            Document::new()
                .with("token", "dirty")
                .with("codes", vec!["DI630"]),
        );
        let id = c.insert(
            Document::new()
                .with("token", "temp")
                .with("codes", vec!["TE510"]),
        );
        c.delete(id); // leaves a gap so next_id > max live id
        c
    }

    #[test]
    fn encode_decode_round_trip() {
        let c = build_collection();
        let bytes = encode_snapshot(&[&c]);
        let restored = decode_snapshot(&bytes).unwrap();
        assert_eq!(restored.len(), 1);
        let r = &restored[0];
        assert_eq!(r.name(), "tokens");
        assert_eq!(r.len(), 2);
        assert_eq!(r.next_id(), c.next_id(), "id counter survives deletes");
        assert!(r.has_index("codes"));
        // Index works after rebuild.
        assert_eq!(r.find(&Filter::eq("codes", "TH000")).len(), 1);
    }

    #[test]
    fn multiple_collections_round_trip() {
        let a = build_collection();
        let mut b = Collection::new("posts");
        b.insert(Document::new().with("body", "hello"));
        let bytes = encode_snapshot(&[&a, &b]);
        let restored = decode_snapshot(&bytes).unwrap();
        assert_eq!(restored.len(), 2);
        let names: Vec<&str> = restored.iter().map(|c| c.name()).collect();
        assert_eq!(names, vec!["tokens", "posts"]);
    }

    #[test]
    fn empty_snapshot_round_trip() {
        let bytes = encode_snapshot(&[]);
        assert!(decode_snapshot(&bytes).unwrap().is_empty());
    }

    #[test]
    fn rejects_bad_magic_version_crc() {
        let c = build_collection();
        let good = encode_snapshot(&[&c]);

        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(decode_snapshot(&bad).is_err(), "magic");

        let mut bad = good.clone();
        bad[4] = 99;
        assert!(decode_snapshot(&bad).is_err(), "version");

        let mut bad = good.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x01;
        assert!(decode_snapshot(&bad).is_err(), "crc");

        assert!(decode_snapshot(&good[..8]).is_err(), "truncated");
    }

    /// Re-frame a tampered body with a valid CRC, so decoding exercises
    /// the structural guards rather than stopping at the checksum.
    fn reframe(body: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(body.len() + 12);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(body);
        out.extend_from_slice(&crc32(body).to_le_bytes());
        out
    }

    #[test]
    fn absurd_collection_count_is_error_not_abort() {
        // A valid-CRC snapshot claiming u32::MAX collections in a handful
        // of bytes: the old code passed the count straight to
        // `Vec::with_capacity`, which aborts the process on allocation
        // failure — a corrupt file must return `Err` instead.
        let mut body = Vec::new();
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = decode_snapshot(&reframe(&body)).unwrap_err();
        assert!(matches!(err, cryptext_common::Error::Corrupt(_)), "{err}");
    }

    #[test]
    fn absurd_index_count_is_error_not_abort() {
        let mut body = Vec::new();
        body.extend_from_slice(&1u32.to_le_bytes()); // one collection
        body.extend_from_slice(&1u32.to_le_bytes()); // name len 1
        body.push(b'c');
        body.extend_from_slice(&0u64.to_le_bytes()); // next_id
        body.extend_from_slice(&u32::MAX.to_le_bytes()); // n_indexes: absurd
        let err = decode_snapshot(&reframe(&body)).unwrap_err();
        assert!(matches!(err, cryptext_common::Error::Corrupt(_)), "{err}");
    }

    #[test]
    fn truncated_file_at_every_prefix_is_error_not_panic() {
        let c = build_collection();
        let good = encode_snapshot(&[&c]);
        for cut in 0..good.len() {
            assert!(
                decode_snapshot(&good[..cut]).is_err(),
                "prefix of {cut} bytes must be a clean error"
            );
        }
    }

    #[test]
    fn file_round_trip_and_missing_file() {
        let dir = tmp_dir("file");
        let path = dir.join("db.snapshot");
        assert!(read_snapshot(&path).unwrap().is_empty(), "missing = empty");
        let c = build_collection();
        write_snapshot(&path, &[&c]).unwrap();
        let restored = read_snapshot(&path).unwrap();
        assert_eq!(restored[0].len(), 2);
        // No temp file left behind.
        assert!(!path.with_extension("tmp").exists());
    }

    #[test]
    fn rewrite_replaces_atomically() {
        let dir = tmp_dir("rewrite");
        let path = dir.join("db.snapshot");
        let c = build_collection();
        write_snapshot(&path, &[&c]).unwrap();
        let mut c2 = Collection::new("other");
        c2.insert(Document::new().with("x", 1i64));
        write_snapshot(&path, &[&c2]).unwrap();
        let restored = read_snapshot(&path).unwrap();
        assert_eq!(restored.len(), 1);
        assert_eq!(restored[0].name(), "other");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Arbitrary bytes fed to the snapshot decoder either decode or
        /// error — never panic, never abort on a sized allocation. (The
        /// load path runs at process start; a corrupt file must surface as
        /// a recoverable `Err` from `Database::open`.)
        #[test]
        fn decode_snapshot_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = decode_snapshot(&bytes);
        }

        /// Same property with a well-formed frame (magic/version/CRC all
        /// valid) around arbitrary body bytes, so the structural decoders
        /// past the checksum are the code actually exercised.
        #[test]
        fn decode_framed_garbage_never_panics(body in proptest::collection::vec(any::<u8>(), 0..256)) {
            let mut data = Vec::with_capacity(body.len() + 12);
            data.extend_from_slice(MAGIC);
            data.extend_from_slice(&VERSION.to_le_bytes());
            data.extend_from_slice(&body);
            data.extend_from_slice(&crc32(&body).to_le_bytes());
            let _ = decode_snapshot(&data);
        }
    }
}
