//! Dependency-free HTTP/1.1 wire layer over the gateway.
//!
//! The paper ships CrypText as an *interactive* toolkit: Look Up,
//! Normalize, and Perturb served to real users over the web. PRs 6 and 8
//! built the traffic-shaping interior — admission control, single-flight
//! coalescing, deadlines, the tiered result cache, graceful drain — and
//! this crate puts the socket in front of it: a thread-per-connection
//! HTTP/1.1 server core on [`std::net::TcpListener`], no async runtime
//! (consistent with the gateway's pool-dispatch execution model), no
//! external crates.
//!
//! ## Shape
//!
//! * [`wire`] — the byte layer: bounded, timeout-sliced request reading
//!   (keep-alive + pipelining via a carry buffer), request-line/header
//!   parsing, percent-decoding, response serialization.
//! * [`router`] — the route table: an [`wire::HttpRequest`] becomes a
//!   typed [`cryptext_gateway::Request`] (or a stats/health route), with
//!   query-parameter parsing for every knob the paper's GUI exposes.
//! * [`server`] — the lifecycle: nonblocking accept loop, connections
//!   handed to the [`cryptext_common::par`] pool (spawn fallback when
//!   the pool is saturated), and the SIGTERM-style drain path —
//!   [`server::ShutdownHandle::shutdown`] stops accepts, lets in-flight
//!   requests settle, runs [`Gateway::drain_with`] (the durable flush
//!   hook), and only then closes the listener.
//!
//! The request/response vocabulary is the gateway's typed envelope
//! ([`cryptext_gateway::Request`] / [`cryptext_gateway::Response`]) and
//! the error vocabulary is `cryptext_common::Error`'s canonical wire
//! mapping (`status_code()` / `retry_after()`), so the wire layer adds
//! *transport*, never new semantics. See `README.md` for the wire
//! grammar, limits, the full status table, and the drain lifecycle.
//!
//! [`Gateway::drain_with`]: cryptext_gateway::Gateway::drain_with

pub mod router;
pub mod server;
pub mod wire;

pub use server::{HttpServer, ServeReport, ShutdownHandle};

/// Wire-level limits and timeouts; `Default` matches the README's
/// documented limits table.
#[derive(Debug, Clone, Copy)]
pub struct HttpConfig {
    /// Bound on the request line + header block, bytes; past it the
    /// request is rejected with `431 Request Header Fields Too Large`.
    pub max_header_bytes: usize,
    /// Bound on `Content-Length`; past it the request is rejected with
    /// `413 Content Too Large` (slowloris can't buy an unbounded body).
    pub max_body_bytes: usize,
    /// Budget for reading one request's header block (and, separately,
    /// its body). A connection that dribbles bytes slower than this gets
    /// `408 Request Timeout` and a close — the slowloris defense.
    pub header_timeout_ms: u64,
}

impl Default for HttpConfig {
    fn default() -> Self {
        HttpConfig {
            max_header_bytes: 16 * 1024,
            max_body_bytes: 256 * 1024,
            header_timeout_ms: 2_000,
        }
    }
}
