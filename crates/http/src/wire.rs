//! The byte layer: reading requests off a TCP stream under limits and
//! timeouts, and serializing responses.
//!
//! Reading is sliced: the stream runs with a short read timeout
//! ([`READ_SLICE`]) and the loop re-checks the wall-clock budget and the
//! server's shutdown flag between slices. That one mechanism gives us
//! the slowloris defense (a dribbling client exhausts the header budget
//! and gets `408`), responsive drain (an idle keep-alive connection
//! notices shutdown within one slice), and bounded memory (the carry
//! buffer is capped by the header/body limits).
//!
//! Pipelining falls out of the carry buffer: bytes read past the current
//! request's end stay in `Conn::carry` and seed the next
//! [`read_request`] call without touching the socket.

use std::io::Read;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use cryptext_common::jsonfmt;

use crate::HttpConfig;

/// Read-timeout slice; shutdown and budget checks happen between slices.
pub(crate) const READ_SLICE: Duration = Duration::from_millis(20);

/// One connection's read state: the stream plus the carry buffer holding
/// bytes read past the last parsed request (pipelined requests queue
/// here).
pub(crate) struct Conn {
    pub stream: TcpStream,
    carry: Vec<u8>,
}

/// A request the wire layer refuses before routing; `status` is written
/// and the connection closes.
#[derive(Debug)]
pub(crate) struct Reject {
    pub status: u16,
    pub message: String,
}

impl Reject {
    fn new(status: u16, message: impl Into<String>) -> Self {
        Reject {
            status,
            message: message.into(),
        }
    }
}

/// What one [`read_request`] call produced.
pub(crate) enum ReadOutcome {
    /// A complete request (headers + body) within limits.
    Request(HttpRequest),
    /// Close the connection silently: clean EOF at a request boundary,
    /// EOF mid-request (a torn request line has no answerable sender),
    /// an idle keep-alive timeout, or shutdown observed while idle.
    Closed,
    /// Refuse with a status, then close.
    Reject(Reject),
}

/// A parsed request. Header names are lowercased at parse time; query
/// pairs are percent-decoded.
#[derive(Debug)]
pub struct HttpRequest {
    pub method: String,
    /// Path before `?`, percent-decoded.
    pub path: String,
    pub query: Vec<(String, String)>,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
    /// HTTP/1.1 defaults on (off with `Connection: close`); HTTP/1.0
    /// defaults off (on with `Connection: keep-alive`).
    pub keep_alive: bool,
}

impl HttpRequest {
    /// First header value under `name` (lowercase).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// First query parameter under `name`.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

impl Conn {
    pub(crate) fn new(stream: TcpStream) -> Self {
        Conn {
            stream,
            carry: Vec::new(),
        }
    }
}

enum ReadSome {
    Data,
    Eof,
    Idle,
}

fn read_some(conn: &mut Conn) -> ReadSome {
    let mut buf = [0u8; 4096];
    match conn.stream.read(&mut buf) {
        Ok(0) => ReadSome::Eof,
        Ok(n) => {
            conn.carry.extend_from_slice(&buf[..n]);
            ReadSome::Data
        }
        Err(e)
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut =>
        {
            ReadSome::Idle
        }
        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => ReadSome::Idle,
        Err(_) => ReadSome::Eof,
    }
}

fn find_terminator(haystack: &[u8]) -> Option<usize> {
    haystack.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Read one complete request off the connection, honoring the carry
/// buffer, the size limits, the read-budget, and the shutdown flag.
pub(crate) fn read_request(
    conn: &mut Conn,
    config: &HttpConfig,
    shutdown: &AtomicBool,
) -> ReadOutcome {
    let started = Instant::now();
    let budget = Duration::from_millis(config.header_timeout_ms);

    // Header block.
    let header_end = loop {
        if let Some(pos) = find_terminator(&conn.carry) {
            // The limit applies to the block itself, not to however many
            // pipelined bytes happen to share the read.
            if pos + 4 > config.max_header_bytes {
                return ReadOutcome::Reject(Reject::new(
                    431,
                    "header block exceeds the size limit",
                ));
            }
            break pos;
        }
        if conn.carry.len() > config.max_header_bytes {
            return ReadOutcome::Reject(Reject::new(431, "header block exceeds the size limit"));
        }
        match read_some(conn) {
            ReadSome::Data => continue,
            ReadSome::Eof => return ReadOutcome::Closed,
            ReadSome::Idle => {
                if conn.carry.is_empty() && shutdown.load(Ordering::Acquire) {
                    return ReadOutcome::Closed;
                }
                if started.elapsed() >= budget {
                    return if conn.carry.is_empty() {
                        // Idle keep-alive connection: no request in
                        // progress, nothing to answer.
                        ReadOutcome::Closed
                    } else {
                        ReadOutcome::Reject(Reject::new(408, "timed out reading request headers"))
                    };
                }
            }
        }
    };
    let head: Vec<u8> = conn
        .carry
        .drain(..header_end + 4)
        .take(header_end)
        .collect();
    let head = match std::str::from_utf8(&head) {
        Ok(s) => s,
        Err(_) => return ReadOutcome::Reject(Reject::new(400, "header block is not UTF-8")),
    };

    // Request line.
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return ReadOutcome::Reject(Reject::new(
                400,
                "malformed request line (want METHOD SP TARGET SP VERSION)",
            ))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return ReadOutcome::Reject(Reject::new(400, "unsupported protocol version"));
    }
    if !target.starts_with('/') {
        return ReadOutcome::Reject(Reject::new(400, "request target must be origin-form"));
    }
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };

    // Headers.
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return ReadOutcome::Reject(Reject::new(400, "malformed header line"));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    // Body framing: Content-Length only. Chunked bodies are refused
    // explicitly rather than misparsed.
    if let Some(te) = headers.iter().find(|(n, _)| n == "transfer-encoding") {
        if !te.1.eq_ignore_ascii_case("identity") {
            return ReadOutcome::Reject(Reject::new(501, "transfer codings are not supported"));
        }
    }
    let content_length: usize = match headers.iter().find(|(n, _)| n == "content-length") {
        None => 0,
        Some((_, v)) => match v.parse() {
            Ok(n) => n,
            Err(_) => return ReadOutcome::Reject(Reject::new(400, "invalid Content-Length")),
        },
    };
    if content_length > config.max_body_bytes {
        return ReadOutcome::Reject(Reject::new(413, "body exceeds the size limit"));
    }
    let body_started = Instant::now();
    while conn.carry.len() < content_length {
        match read_some(conn) {
            ReadSome::Data => continue,
            ReadSome::Eof => return ReadOutcome::Closed,
            ReadSome::Idle => {
                if body_started.elapsed() >= budget {
                    return ReadOutcome::Reject(Reject::new(408, "timed out reading request body"));
                }
            }
        }
    }
    let body: Vec<u8> = conn.carry.drain(..content_length).collect();

    let connection = headers
        .iter()
        .find(|(n, _)| n == "connection")
        .map(|(_, v)| v.to_ascii_lowercase());
    let keep_alive = match version {
        "HTTP/1.0" => connection.as_deref() == Some("keep-alive"),
        _ => connection.as_deref() != Some("close"),
    };

    ReadOutcome::Request(HttpRequest {
        method: method.to_string(),
        path: percent_decode(raw_path),
        query: parse_query(raw_query),
        headers,
        body,
        keep_alive,
    })
}

/// Percent-decode, with `+` as space (query convention; harmless in
/// paths). Invalid escapes pass through literally.
pub(crate) fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).and_then(|h| {
                    let h = std::str::from_utf8(h).ok()?;
                    u8::from_str_radix(h, 16).ok()
                });
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

pub(crate) fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|p| !p.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect()
}

/// Canonical reason phrase for every status the wire layer emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        401 => "Unauthorized",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Content Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// One response, ready to serialize. `close` appends `Connection: close`
/// (and the connection loop then hangs up).
pub(crate) struct WireResponse {
    pub status: u16,
    pub content_type: &'static str,
    pub headers: Vec<(&'static str, String)>,
    pub body: Vec<u8>,
    pub close: bool,
}

impl WireResponse {
    pub(crate) fn json(status: u16, body: String) -> Self {
        WireResponse {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into_bytes(),
            close: false,
        }
    }

    pub(crate) fn text(status: u16, body: &str) -> Self {
        WireResponse {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
            close: false,
        }
    }

    /// The standard error body: `{"error":<label>,"message":<detail>}`.
    pub(crate) fn error(status: u16, label: &str, message: &str) -> Self {
        let mut body = String::with_capacity(48 + message.len());
        body.push_str("{\"error\":");
        jsonfmt::push_str_escaped(&mut body, label);
        body.push_str(",\"message\":");
        jsonfmt::push_str_escaped(&mut body, message);
        body.push('}');
        let mut resp = WireResponse::json(status, body);
        resp.headers.push(("Cache-Control", "no-store".to_string()));
        resp
    }

    pub(crate) fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256 + self.body.len());
        out.extend_from_slice(
            format!("HTTP/1.1 {} {}\r\n", self.status, reason(self.status)).as_bytes(),
        );
        out.extend_from_slice(format!("Content-Type: {}\r\n", self.content_type).as_bytes());
        out.extend_from_slice(format!("Content-Length: {}\r\n", self.body.len()).as_bytes());
        for (name, value) in &self.headers {
            out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        if self.close {
            out.extend_from_slice(b"Connection: close\r\n");
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding_handles_escapes_plus_and_junk() {
        assert_eq!(percent_decode("plain"), "plain");
        assert_eq!(percent_decode("a%20b"), "a b");
        assert_eq!(percent_decode("a+b"), "a b");
        assert_eq!(percent_decode("%2Fpath"), "/path");
        assert_eq!(percent_decode("100%"), "100%", "trailing % passes through");
        assert_eq!(percent_decode("%zz"), "%zz", "bad hex passes through");
    }

    #[test]
    fn query_parsing_splits_pairs() {
        let q = parse_query("q=vacc1ne&k=1&flag&empty=");
        assert_eq!(
            q,
            vec![
                ("q".to_string(), "vacc1ne".to_string()),
                ("k".to_string(), "1".to_string()),
                ("flag".to_string(), String::new()),
                ("empty".to_string(), String::new()),
            ]
        );
    }

    #[test]
    fn response_serialization_is_well_formed() {
        let mut resp = WireResponse::json(200, "{}".to_string());
        resp.headers.push(("X-Test", "1".to_string()));
        resp.close = true;
        let bytes = resp.to_bytes();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("X-Test: 1\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn error_bodies_escape_their_messages() {
        let resp = WireResponse::error(400, "bad_request", "a \"quoted\" detail");
        let body = String::from_utf8(resp.body).unwrap();
        assert_eq!(
            body,
            r#"{"error":"bad_request","message":"a \"quoted\" detail"}"#
        );
    }

    #[test]
    fn every_emitted_status_has_a_reason() {
        for status in [
            200, 400, 401, 403, 404, 405, 408, 409, 413, 429, 431, 500, 501, 503, 504,
        ] {
            assert_ne!(reason(status), "Unknown", "status {status}");
        }
    }
}
