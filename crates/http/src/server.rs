//! The server lifecycle: accept loop, per-connection workers, and the
//! SIGTERM-style drain path.
//!
//! The listener runs nonblocking and the accept loop polls it in short
//! sleeps, so [`ShutdownHandle::shutdown`] is observed within
//! milliseconds without signal machinery. Each accepted connection is
//! handed to the shared [`cryptext_common::par`] pool (falling back to a
//! dedicated thread when the pool is saturated — an idle keep-alive
//! connection must never wedge a pool lane the gateway wants for
//! execution; the gateway itself degrades refused dispatches to inline
//! execution, so the two layers can share the pool without deadlock).
//!
//! ## Drain lifecycle
//!
//! `shutdown()` flips one flag; [`HttpServer::serve_with_flush`] then:
//!
//! 1. stops accepting (the loop exits; queued SYNs are refused once the
//!    listener drops),
//! 2. waits for open connections to settle — handlers answer their
//!    in-flight request with `Connection: close`, idle keep-alive
//!    connections notice the flag within one read slice and hang up —
//!    bounded by the gateway's `drain_deadline_ms`,
//! 3. runs [`Gateway::drain_with`] with the caller's flush hook (the
//!    durable store's delta-log sync), and only then
//! 4. closes the listener and returns the [`ServeReport`].
//!
//! [`Gateway::drain_with`]: cryptext_gateway::Gateway::drain_with

use std::io::Write;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use cryptext_common::failpoint::{self, FailAction};
use cryptext_common::metrics::{self, Counter, Histogram, MetricsRegistry};
use cryptext_common::{par, Error, Result};
use cryptext_core::database::TokenDatabase;
use cryptext_core::TokenStore;
use cryptext_gateway::{CacheDisposition, DrainReport, Gateway};

use crate::router::{self, Routed};
use crate::wire::{self, Conn, HttpRequest, ReadOutcome, WireResponse, READ_SLICE};
use crate::HttpConfig;

/// Failpoint at the response-write boundary of **API routes** (lookup /
/// normalize / perturb — never stats, health, or wire rejects, so an
/// armed process can still be probed). `torn@N:K` writes K bytes of the
/// N-th response and drops the connection — the torn-write CI arm proves
/// a poisoned connection can't poison the listener.
pub const WRITE_FAILPOINT: &str = "http.write";

/// How long the accept loop sleeps when the listener has nothing.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Cross-thread server state.
struct Shared {
    shutdown: AtomicBool,
    open_conns: AtomicUsize,
    requests_served: AtomicU64,
    metrics: HttpMetrics,
}

/// The wire layer's instruments, registered with the gateway's (i.e. the
/// service's) registry at bind time: one request-handling latency
/// histogram plus per-status response counters.
struct HttpMetrics {
    registry: Arc<MetricsRegistry>,
    request_us: Histogram,
    /// Status-labelled counters, created on first use of each status.
    /// The mutex guards registration only (a handful of distinct
    /// statuses per server lifetime); recording goes through the cloned
    /// counter handle.
    by_status: Mutex<Vec<(u16, Counter)>>,
}

impl HttpMetrics {
    fn new(registry: &Arc<MetricsRegistry>) -> Self {
        HttpMetrics {
            registry: Arc::clone(registry),
            request_us: registry.histogram(
                "cryptext_http_request_us",
                "Wire request handling time, routing to serialized response (microseconds)",
            ),
            by_status: Mutex::new(Vec::new()),
        }
    }

    fn status_counter(&self, status: u16) -> Counter {
        let mut by_status = self.by_status.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((_, counter)) = by_status.iter().find(|(s, _)| *s == status) {
            return counter.clone();
        }
        let counter = self.registry.counter_with(
            "cryptext_http_responses_total",
            "HTTP responses written, by status code (wire rejects included)",
            &[("status", metrics::label_value(&status.to_string()))],
        );
        by_status.push((status, counter.clone()));
        counter
    }
}

/// Clonable remote control for a running server; `shutdown()` starts the
/// drain lifecycle described in the module docs.
#[derive(Clone)]
pub struct ShutdownHandle {
    shared: Arc<Shared>,
}

impl ShutdownHandle {
    /// Begin shutdown: stop accepting, drain in-flight work, flush, exit.
    /// Idempotent; returns immediately (the serve loop does the work).
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
    }

    /// Has shutdown been requested?
    pub fn is_shutdown(&self) -> bool {
        self.shared.shutdown.load(Ordering::Acquire)
    }
}

/// What a completed serve loop hands back.
#[derive(Debug)]
pub struct ServeReport {
    /// The gateway's drain outcome (quiescence + flush result).
    pub drain: DrainReport,
    /// Total requests answered over the server's lifetime (including
    /// wire-level rejects).
    pub requests_served: u64,
    /// Connections still open at the moment shutdown was observed.
    pub connections_at_drain: usize,
}

/// A bound-but-not-yet-serving HTTP front over a [`Gateway`].
pub struct HttpServer<S: TokenStore + Send + Sync + 'static = TokenDatabase> {
    gateway: Arc<Gateway<S>>,
    config: HttpConfig,
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl<S: TokenStore + Send + Sync + 'static> HttpServer<S> {
    /// Bind `addr` (use port 0 for an ephemeral test port). The listener
    /// is nonblocking; nothing is served until [`Self::serve_with_flush`].
    pub fn bind(
        gateway: Arc<Gateway<S>>,
        config: HttpConfig,
        addr: impl ToSocketAddrs,
    ) -> Result<Self> {
        let listener = TcpListener::bind(addr).map_err(Error::Io)?;
        listener.set_nonblocking(true).map_err(Error::Io)?;
        let metrics = HttpMetrics::new(gateway.metrics());
        Ok(HttpServer {
            gateway,
            config,
            listener,
            shared: Arc::new(Shared {
                shutdown: AtomicBool::new(false),
                open_conns: AtomicUsize::new(0),
                requests_served: AtomicU64::new(0),
                metrics,
            }),
        })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn local_addr(&self) -> Result<std::net::SocketAddr> {
        self.listener.local_addr().map_err(Error::Io)
    }

    /// A handle for stopping the server from another thread.
    pub fn handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Serve until [`ShutdownHandle::shutdown`], then drain with a no-op
    /// flush. In-memory deployments use this; durable ones use
    /// [`Self::serve_with_flush`].
    pub fn serve(self) -> ServeReport {
        self.serve_with_flush(|| Ok(()))
    }

    /// Serve until shutdown, then run the drain lifecycle with `flush`
    /// as the durable sync hook (see the module docs for the ordering
    /// guarantees). Blocks the calling thread for the server's lifetime.
    pub fn serve_with_flush(self, flush: impl FnOnce() -> Result<()>) -> ServeReport {
        let shared = Arc::clone(&self.shared);
        loop {
            if shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    shared.open_conns.fetch_add(1, Ordering::AcqRel);
                    let gateway = Arc::clone(&self.gateway);
                    let config = self.config;
                    let conn_shared = Arc::clone(&shared);
                    let job = move || {
                        handle_connection(stream, &gateway, &config, &conn_shared);
                        conn_shared.open_conns.fetch_sub(1, Ordering::AcqRel);
                    };
                    // A connection is long-lived (keep-alive): prefer a
                    // pool lane, but never block the accept loop waiting
                    // for one.
                    if let Err(job) = par::spawn(job) {
                        std::thread::spawn(job);
                    }
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::Interrupted =>
                {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(_) => {
                    // Transient accept failure (e.g. aborted handshake,
                    // fd pressure): the listener itself is still good.
                    std::thread::sleep(ACCEPT_POLL);
                }
            }
        }

        // Shutdown observed. In-flight connections settle first …
        let connections_at_drain = shared.open_conns.load(Ordering::Acquire);
        let budget = Duration::from_millis(self.gateway.config().drain_deadline_ms);
        let started = Instant::now();
        while shared.open_conns.load(Ordering::Acquire) > 0 && started.elapsed() < budget {
            std::thread::sleep(Duration::from_millis(2));
        }
        // … then the gateway drains and the durable flush runs …
        let drain = self.gateway.drain_with(flush);
        // … and only now does the listener close (self drops here).
        ServeReport {
            drain,
            requests_served: shared.requests_served.load(Ordering::Relaxed),
            connections_at_drain,
        }
    }
}

/// Wire-level reject labels (the gateway's errors carry their own
/// [`Error::kind_label`]; these cover refusals born in the wire layer).
fn reject_label(status: u16) -> &'static str {
    match status {
        400 => "bad_request",
        408 => "request_timeout",
        413 => "body_too_large",
        431 => "headers_too_large",
        501 => "not_implemented",
        _ => "rejected",
    }
}

/// One connection's lifetime: read requests off the carry buffer until
/// close/reject/shutdown, answering each in order (pipelining preserved
/// because reading and writing stay on this one thread).
fn handle_connection<S: TokenStore + Send + Sync + 'static>(
    stream: TcpStream,
    gateway: &Gateway<S>,
    config: &HttpConfig,
    shared: &Shared,
) {
    // The read slice bounds every blocking read so the handler can
    // re-check budgets and the shutdown flag; nodelay because responses
    // are single small writes.
    if stream.set_read_timeout(Some(READ_SLICE)).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    let mut conn = Conn::new(stream);
    loop {
        match wire::read_request(&mut conn, config, &shared.shutdown) {
            ReadOutcome::Closed => return,
            ReadOutcome::Reject(reject) => {
                // A refused request closes the connection: framing may be
                // lost (oversized/torn/timed-out input), so the carry
                // buffer can't be trusted for a next request.
                let mut resp = WireResponse::error(
                    reject.status,
                    reject_label(reject.status),
                    &reject.message,
                );
                resp.close = true;
                shared.requests_served.fetch_add(1, Ordering::Relaxed);
                shared.metrics.status_counter(resp.status).inc();
                let _ = conn.stream.write_all(&resp.to_bytes());
                return;
            }
            ReadOutcome::Request(request) => {
                let started = Instant::now();
                let draining = shared.shutdown.load(Ordering::Acquire);
                let (mut resp, api_route) = respond(gateway, &request);
                if !request.keep_alive || draining {
                    resp.close = true;
                }
                shared.requests_served.fetch_add(1, Ordering::Relaxed);
                shared.metrics.status_counter(resp.status).inc();
                let written = write_response(&mut conn.stream, &resp, api_route);
                shared
                    .metrics
                    .request_us
                    .observe(started.elapsed().as_micros() as u64);
                if !written || resp.close {
                    return;
                }
            }
        }
    }
}

/// Route + execute one request. The bool is "API route" — the only
/// writes [`WRITE_FAILPOINT`] applies to.
fn respond<S: TokenStore + Send + Sync + 'static>(
    gateway: &Gateway<S>,
    request: &HttpRequest,
) -> (WireResponse, bool) {
    let routed = match router::route(request) {
        Ok(routed) => routed,
        Err(resp) => return (resp, false),
    };
    match routed {
        Routed::Health => (WireResponse::text(200, "ok\n"), false),
        Routed::Stats => {
            let mut resp = WireResponse::json(200, gateway.stats_report().to_json());
            resp.headers.push(("Cache-Control", "no-store".to_string()));
            (resp, false)
        }
        Routed::Metrics => {
            let mut resp = WireResponse::text(200, &gateway.metrics_text());
            // The Prometheus text exposition content type; scrapes must
            // always see live counters.
            resp.content_type = "text/plain; version=0.0.4";
            resp.headers.push(("Cache-Control", "no-store".to_string()));
            (resp, false)
        }
        Routed::Api(api) => {
            let auth = match router::bearer_token(request) {
                Ok(token) => token,
                Err(resp) => return (resp, false),
            };
            match gateway.handle(&auth, api) {
                Ok(response) => {
                    let mut resp = WireResponse::json(200, response.output.to_json());
                    resp.headers
                        .push(("X-Cryptext-Generation", response.generation.to_string()));
                    resp.headers
                        .push(("X-Cryptext-Cache", response.cache.label().to_string()));
                    if response.cache.cacheable() {
                        // Freshness horizon = the tier-1 TTL: a fronting
                        // cache may hold the response as long as tier-1
                        // itself would.
                        let max_age = gateway.service().config().cache_ttl_ms / 1000;
                        resp.headers
                            .push(("Cache-Control", format!("public, max-age={max_age}")));
                        if response.cache == CacheDisposition::Cold {
                            resp.headers.push(("Age", "0".to_string()));
                        }
                    } else {
                        resp.headers.push(("Cache-Control", "no-store".to_string()));
                    }
                    (resp, true)
                }
                Err(e) => {
                    let mut resp =
                        WireResponse::error(e.status_code(), e.kind_label(), &e.to_string());
                    if let Some(seconds) = e.retry_after() {
                        resp.headers.push(("Retry-After", seconds.to_string()));
                    }
                    (resp, true)
                }
            }
        }
    }
}

/// Write one response, honoring [`WRITE_FAILPOINT`] on API routes.
/// Returns false when the connection must close (write error or injected
/// fault) — the caller's loop exits, the listener never notices.
fn write_response(stream: &mut TcpStream, resp: &WireResponse, api_route: bool) -> bool {
    let bytes = resp.to_bytes();
    if api_route {
        match failpoint::trigger(WRITE_FAILPOINT) {
            Some(FailAction::Kill) => return false,
            Some(FailAction::Torn(k)) => {
                let cut = k.min(bytes.len());
                let _ = stream.write_all(&bytes[..cut]);
                let _ = stream.flush();
                return false;
            }
            Some(FailAction::Delay(ms)) => std::thread::sleep(Duration::from_millis(ms)),
            None => {}
        }
    }
    stream
        .write_all(&bytes)
        .and_then(|_| stream.flush())
        .is_ok()
}
