//! The route table: a parsed [`HttpRequest`] becomes a typed gateway
//! [`Request`] (or a stats/health route), with every knob the paper's
//! GUI exposes surfaced as a query parameter.
//!
//! | Route | Method | Input | Parameters (query) |
//! |---|---|---|---|
//! | `/lookup` | GET | `q` (token) | `k`, `d`, `exclude_identity`, `observed_only` |
//! | `/normalize` | POST | body (UTF-8 text) | `k`, `d`, `edit_penalty`, `prior_weight`, `max_candidates` |
//! | `/perturb` | POST | body (UTF-8 text) | `ratio`, `k`, `d`, `case_sensitive`, `observed_only`, `seed` |
//! | `/stats` | GET | — | — |
//! | `/metrics` | GET | — | — |
//! | `/healthz` | GET | — | — |
//!
//! Every API route also takes `deadline_ms` and `max_retries` as
//! per-call [`CallOptions`] overrides. Unknown paths are `404`, a known
//! path with the wrong method is `405` (with `Allow`), and an
//! unparseable parameter is `400` naming the parameter.

use cryptext_core::lookup::LookupParams;
use cryptext_core::normalize::NormalizeParams;
use cryptext_core::perturb::PerturbParams;
use cryptext_core::service::ApiToken;
use cryptext_gateway::{CallOptions, Request};

use crate::wire::{HttpRequest, WireResponse};

/// Where a request landed.
pub(crate) enum Routed {
    /// One of the three API routes, fully parsed and ready for
    /// `Gateway::handle` (authorization still pending).
    Api(Request),
    /// `GET /stats` — the unified [`cryptext_gateway::StatsReport`].
    Stats,
    /// `GET /metrics` — every registered instrument in Prometheus text
    /// exposition format.
    Metrics,
    /// `GET /healthz` — liveness probe.
    Health,
}

fn bad_param(name: &str, value: &str) -> WireResponse {
    WireResponse::error(
        400,
        "invalid_argument",
        &format!("query parameter {name:?} has invalid value {value:?}"),
    )
}

fn method_not_allowed(allow: &'static str) -> WireResponse {
    let mut resp = WireResponse::error(405, "method_not_allowed", "see the Allow header");
    resp.headers.push(("Allow", allow.to_string()));
    resp
}

macro_rules! parse_param {
    ($req:expr, $name:literal, $default:expr) => {
        match $req.query_param($name) {
            None => $default,
            Some(raw) => match raw.parse() {
                Ok(v) => v,
                Err(_) => return Err(bad_param($name, raw)),
            },
        }
    };
}

fn parse_bool(req: &HttpRequest, name: &'static str, default: bool) -> Result<bool, WireResponse> {
    match req.query_param(name) {
        None => Ok(default),
        Some("true") | Some("1") => Ok(true),
        Some("false") | Some("0") => Ok(false),
        Some(other) => Err(bad_param(name, other)),
    }
}

fn call_options(req: &HttpRequest) -> Result<CallOptions, WireResponse> {
    let mut opts = CallOptions::default();
    if let Some(raw) = req.query_param("deadline_ms") {
        match raw.parse() {
            Ok(ms) => opts.deadline_ms = Some(ms),
            Err(_) => return Err(bad_param("deadline_ms", raw)),
        }
    }
    if let Some(raw) = req.query_param("max_retries") {
        match raw.parse() {
            Ok(n) => opts.max_retries = Some(n),
            Err(_) => return Err(bad_param("max_retries", raw)),
        }
    }
    Ok(opts)
}

fn body_text(req: &HttpRequest) -> Result<String, WireResponse> {
    match std::str::from_utf8(&req.body) {
        Ok(s) => Ok(s.to_string()),
        Err(_) => Err(WireResponse::error(
            400,
            "invalid_argument",
            "request body is not UTF-8 text",
        )),
    }
}

/// Dispatch a parsed request to a route, or produce the refusal
/// response (`404`/`405`/`400`) directly.
pub(crate) fn route(req: &HttpRequest) -> Result<Routed, WireResponse> {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/lookup") => {
            let Some(token) = req.query_param("q") else {
                return Err(WireResponse::error(
                    400,
                    "invalid_argument",
                    "missing required query parameter \"q\"",
                ));
            };
            let token = token.to_string();
            let defaults = LookupParams::paper_default();
            let mut params = LookupParams::new(
                parse_param!(req, "k", defaults.k),
                parse_param!(req, "d", defaults.d),
            );
            params.exclude_identity =
                parse_bool(req, "exclude_identity", defaults.exclude_identity)?;
            params.observed_only = parse_bool(req, "observed_only", defaults.observed_only)?;
            let opts = call_options(req)?;
            Ok(Routed::Api(Request::lookup(token, params).with_opts(opts)))
        }
        ("POST", "/normalize") => {
            let text = body_text(req)?;
            let defaults = NormalizeParams::default();
            let params = NormalizeParams {
                k: parse_param!(req, "k", defaults.k),
                d: parse_param!(req, "d", defaults.d),
                edit_penalty: parse_param!(req, "edit_penalty", defaults.edit_penalty),
                prior_weight: parse_param!(req, "prior_weight", defaults.prior_weight),
                max_candidates: parse_param!(req, "max_candidates", defaults.max_candidates),
            };
            let opts = call_options(req)?;
            Ok(Routed::Api(
                Request::normalize(text, params).with_opts(opts),
            ))
        }
        ("POST", "/perturb") => {
            let text = body_text(req)?;
            let defaults = PerturbParams::with_ratio(parse_param!(req, "ratio", 1.0));
            let params = PerturbParams {
                k: parse_param!(req, "k", defaults.k),
                d: parse_param!(req, "d", defaults.d),
                case_sensitive: parse_bool(req, "case_sensitive", defaults.case_sensitive)?,
                observed_only: parse_bool(req, "observed_only", defaults.observed_only)?,
                seed: parse_param!(req, "seed", defaults.seed),
                ..defaults
            };
            let opts = call_options(req)?;
            Ok(Routed::Api(Request::perturb(text, params).with_opts(opts)))
        }
        ("GET", "/stats") => Ok(Routed::Stats),
        ("GET", "/metrics") => Ok(Routed::Metrics),
        ("GET", "/healthz") => Ok(Routed::Health),
        (_, "/lookup") | (_, "/stats") | (_, "/metrics") | (_, "/healthz") => {
            Err(method_not_allowed("GET"))
        }
        (_, "/normalize") | (_, "/perturb") => Err(method_not_allowed("POST")),
        _ => Err(WireResponse::error(
            404,
            "not_found",
            &format!("no route for {:?}", req.path),
        )),
    }
}

/// Extract the bearer credential. A missing/malformed `Authorization`
/// header is the wire layer's `401` (with `WWW-Authenticate`); a
/// *presented* credential the service refuses becomes the gateway's
/// `Unauthorized` → `403`.
pub(crate) fn bearer_token(req: &HttpRequest) -> Result<ApiToken, WireResponse> {
    let challenge = |message: &str| {
        let mut resp = WireResponse::error(401, "unauthorized", message);
        resp.headers
            .push(("WWW-Authenticate", "Bearer realm=\"cryptext\"".to_string()));
        resp
    };
    match req.header("authorization") {
        None => Err(challenge("missing Authorization header")),
        Some(value) => match value.strip_prefix("Bearer ") {
            Some(raw) if !raw.is_empty() => Ok(ApiToken::from_raw(raw)),
            _ => Err(challenge("Authorization header is not a bearer credential")),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cryptext_gateway::{RouteClass, RouteParams};

    fn get(target: &str) -> HttpRequest {
        req("GET", target, &[], Vec::new())
    }

    fn req(method: &str, target: &str, headers: &[(&str, &str)], body: Vec<u8>) -> HttpRequest {
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p, q),
            None => (target, ""),
        };
        HttpRequest {
            method: method.to_string(),
            path: path.to_string(),
            query: crate::wire::parse_query(query),
            headers: headers
                .iter()
                .map(|(n, v)| (n.to_string(), v.to_string()))
                .collect(),
            body,
            keep_alive: true,
        }
    }

    #[test]
    fn lookup_route_parses_every_knob() {
        let routed = route(&get(
            "/lookup?q=vacc1ne&k=2&d=2&exclude_identity=true&observed_only=false&deadline_ms=50",
        ))
        .ok()
        .unwrap();
        let Routed::Api(api) = routed else {
            panic!("expected API route")
        };
        assert_eq!(api.route(), RouteClass::Lookup);
        assert_eq!(api.input, "vacc1ne");
        let RouteParams::Lookup(p) = api.params else {
            panic!("expected lookup params")
        };
        assert_eq!((p.k, p.d), (2, 2));
        assert!(p.exclude_identity);
        assert!(!p.observed_only);
        assert_eq!(api.opts.deadline_ms, Some(50));
    }

    #[test]
    fn lookup_requires_the_query_token() {
        let resp = route(&get("/lookup")).err().unwrap();
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn bad_numeric_parameter_names_itself() {
        let resp = route(&get("/lookup?q=x&k=banana")).err().unwrap();
        assert_eq!(resp.status, 400);
        let body = String::from_utf8(resp.body).unwrap();
        assert!(
            body.contains("\\\"k\\\""),
            "body should name the parameter: {body}"
        );
    }

    #[test]
    fn normalize_takes_body_and_query_params() {
        let routed = route(&req(
            "POST",
            "/normalize?max_candidates=3&edit_penalty=2.0",
            &[],
            b"teh vacc1ne".to_vec(),
        ))
        .ok()
        .unwrap();
        let Routed::Api(api) = routed else {
            panic!("expected API route")
        };
        assert_eq!(api.input, "teh vacc1ne");
        let RouteParams::Normalize(p) = api.params else {
            panic!("expected normalize params")
        };
        assert_eq!(p.max_candidates, 3);
        assert_eq!(p.edit_penalty, 2.0);
    }

    #[test]
    fn perturb_takes_ratio_and_seed() {
        let routed = route(&req(
            "POST",
            "/perturb?ratio=0.25&seed=7",
            &[],
            b"hi".to_vec(),
        ))
        .ok()
        .unwrap();
        let Routed::Api(api) = routed else {
            panic!("expected API route")
        };
        let RouteParams::Perturb(p) = api.params else {
            panic!("expected perturb params")
        };
        assert_eq!(p.ratio, 0.25);
        assert_eq!(p.seed, 7);
    }

    #[test]
    fn wrong_method_is_405_with_allow() {
        let resp = route(&req("DELETE", "/lookup", &[], Vec::new()))
            .err()
            .unwrap();
        assert_eq!(resp.status, 405);
        assert!(resp
            .headers
            .iter()
            .any(|(n, v)| *n == "Allow" && v == "GET"));
        let resp = route(&get("/normalize")).err().unwrap();
        assert_eq!(resp.status, 405);
        assert!(resp
            .headers
            .iter()
            .any(|(n, v)| *n == "Allow" && v == "POST"));
    }

    #[test]
    fn unknown_path_is_404() {
        let resp = route(&get("/nope")).err().unwrap();
        assert_eq!(resp.status, 404);
    }

    #[test]
    fn stats_metrics_and_health_route() {
        assert!(matches!(route(&get("/stats")), Ok(Routed::Stats)));
        assert!(matches!(route(&get("/metrics")), Ok(Routed::Metrics)));
        assert!(matches!(route(&get("/healthz")), Ok(Routed::Health)));
        let resp = route(&req("POST", "/metrics", &[], Vec::new()))
            .err()
            .unwrap();
        assert_eq!(resp.status, 405);
        assert!(resp
            .headers
            .iter()
            .any(|(n, v)| *n == "Allow" && v == "GET"));
    }

    #[test]
    fn bearer_extraction() {
        let missing = bearer_token(&get("/lookup?q=x")).err().unwrap();
        assert_eq!(missing.status, 401);
        assert!(missing
            .headers
            .iter()
            .any(|(n, _)| *n == "WWW-Authenticate"));

        let basic = bearer_token(&req(
            "GET",
            "/lookup?q=x",
            &[("authorization", "Basic dXNlcg==")],
            Vec::new(),
        ))
        .err()
        .unwrap();
        assert_eq!(basic.status, 401);

        let ok = bearer_token(&req(
            "GET",
            "/lookup?q=x",
            &[("authorization", "Bearer tok-123")],
            Vec::new(),
        ));
        assert!(ok.is_ok());
    }
}
