//! Sentence templates for the synthetic social stream.
//!
//! Slots: `{target}` — a sensitive target word of the topic; `{topic}` — a
//! topical content word; `{sent}` — a sentiment word matching the post's
//! polarity; `{gen}` — general filler; `{toxic}` — an insult (toxic posts
//! only). Templates are deliberately colloquial: the tokenizer, database
//! curation and classifiers must work on social-media register, not
//! newswire.
//!
//! Design constraint for the Fig. 4 reproduction: the toxic templates are
//! glue-for-glue copies of the negative templates with insult slots in
//! place of sentiment slots. That makes the insult tokens carry (nearly)
//! all of the toxicity signal — exactly how a Perspective-style lexical
//! toxicity scorer behaves, and why perturbing those tokens (the wild
//! evasion strategy) degrades it.

/// Templates for positive/neutral posts.
pub const POSITIVE_TEMPLATES: &[&str] = &[
    "the {target} made real progress on {topic} and people are {sent}",
    "so {sent} about the {target} and their {topic} plans today",
    "honestly the {topic} news about {target} is {sent}",
    "big {sent} moment for {target} after the {topic} announcement",
    "my {gen} said the {target} handled the {topic} debate and it was {sent}",
    "this {topic} update from {target} is actually {sent} and {gen} agree",
    "we should {gen} more because the {target} {topic} results look {sent}",
    "what a {sent} week for {target} with the {topic} finally moving",
    "the {topic} report shows {sent} progress and even {target} noticed",
    "feeling {sent} after reading about {target} and the new {topic}",
    "everyone in my {gen} thinks the {target} {topic} idea is {sent}",
    "credit where due the {target} were {sent} on {topic} this time",
];

/// Templates for negative posts.
pub const NEGATIVE_TEMPLATES: &[&str] = &[
    "the {target} are {sent} and their {topic} plan is a {sent2}",
    "cannot believe the {target} pushed that {sent} {topic} again",
    "this {topic} mess proves the {target} are {sent}",
    "so {sent} about the {target} and the whole {topic} disaster",
    "the {target} keep {gen} about {topic} and it is {sent}",
    "another {sent} week of {target} ruining the {topic} for everyone",
    "my {gen} warned me the {target} {topic} push was {sent}",
    "wake up people the {target} are spreading {sent} lies about {topic}",
    "the {topic} numbers are {sent} and the {target} still deny it",
    "tired of the {sent} {target} and their {topic} propaganda",
    "everything about the {target} {topic} agenda is {sent} and {sent2}",
    "the {target} turned the {topic} into a {sent} circus",
];

/// Templates for toxic negative posts: the same glue as
/// [`NEGATIVE_TEMPLATES`], with insults in the signal slots.
pub const TOXIC_TEMPLATES: &[&str] = &[
    "the {target} are {toxic} and their {topic} plan is a {toxic2}",
    "cannot believe the {toxic} {target} pushed that {topic} again",
    "this {topic} mess proves the {target} are {toxic}",
    "so tired of the {toxic} {target} and the whole {topic} disaster",
    "the {target} keep {gen} about {topic} and they are {toxic}",
    "another week of {toxic} {target} ruining the {topic} for everyone",
    "my {gen} warned me the {target} are {toxic} about {topic}",
    "wake up people the {toxic} {target} are spreading lies about {topic}",
    "the {topic} numbers are fake and the {toxic} {target} still deny it",
    "tired of the {toxic} {target} and their {topic} propaganda",
    "everything about the {target} {topic} agenda is {toxic} and {toxic2}",
    "the {toxic} {target} turned the {topic} into a circus",
];

#[cfg(test)]
mod tests {
    use super::*;

    fn slots_of(t: &str) -> Vec<&str> {
        let mut out = Vec::new();
        let mut rest = t;
        while let Some(start) = rest.find('{') {
            let end = rest[start..]
                .find('}')
                .map(|e| start + e)
                .expect("closed slot");
            out.push(&rest[start + 1..end]);
            rest = &rest[end + 1..];
        }
        out
    }

    #[test]
    fn every_template_mentions_a_target() {
        for t in POSITIVE_TEMPLATES
            .iter()
            .chain(NEGATIVE_TEMPLATES)
            .chain(TOXIC_TEMPLATES)
        {
            assert!(slots_of(t).contains(&"target"), "{t}");
        }
    }

    #[test]
    fn sentiment_templates_carry_sentiment_slots() {
        for t in POSITIVE_TEMPLATES.iter().chain(NEGATIVE_TEMPLATES) {
            assert!(slots_of(t).iter().any(|s| s.starts_with("sent")), "{t}");
        }
    }

    #[test]
    fn toxic_templates_carry_toxic_slots() {
        for t in TOXIC_TEMPLATES {
            assert!(slots_of(t).iter().any(|s| s.starts_with("toxic")), "{t}");
        }
    }

    #[test]
    fn toxic_glue_matches_negative_glue() {
        // The toxicity signal must live in the {toxic} slots, not in glue
        // vocabulary: every non-slot word of every toxic template must
        // appear somewhere in the negative templates' glue too.
        let negative_glue: std::collections::HashSet<&str> = NEGATIVE_TEMPLATES
            .iter()
            .flat_map(|t| t.split_whitespace())
            .filter(|w| !w.contains('{'))
            .collect();
        for t in TOXIC_TEMPLATES {
            for w in t.split_whitespace().filter(|w| !w.contains('{')) {
                // A tiny allow-list of function-word variations; they carry
                // no toxicity signal.
                let harmless = ["fake", "week", "they", "are", "of"];
                assert!(
                    negative_glue.contains(w) || harmless.contains(&w),
                    "toxic-only glue word {w:?} in {t:?} would leak label signal"
                );
            }
        }
    }

    #[test]
    fn slots_are_known() {
        let known = ["target", "topic", "sent", "sent2", "gen", "toxic", "toxic2"];
        for t in POSITIVE_TEMPLATES
            .iter()
            .chain(NEGATIVE_TEMPLATES)
            .chain(TOXIC_TEMPLATES)
        {
            for s in slots_of(t) {
                assert!(known.contains(&s), "unknown slot {s} in {t}");
            }
        }
    }
}
