//! Embedded English lexicons.
//!
//! A compact but realistic vocabulary: function words, per-topic content
//! vocabularies, sentiment lexicons, a mild insult list for toxicity, and
//! the *sensitive targets* the paper shows being perturbed in the wild.
//! `english_lexicon()` is the dictionary the Normalization function treats
//! as "correctly-spelled English words" (§III-A).

use std::collections::HashSet;
use std::sync::OnceLock;

/// Topic of a generated document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Topic {
    /// Elections, parties, congress.
    Politics,
    /// Vaccines, pandemic, healthcare.
    Health,
    /// Leagues, matches, players.
    Sports,
    /// Software, gadgets, platforms.
    Tech,
    /// Movies, music, celebrities.
    Entertainment,
}

impl Topic {
    /// All topics in canonical order.
    pub const ALL: [Topic; 5] = [
        Topic::Politics,
        Topic::Health,
        Topic::Sports,
        Topic::Tech,
        Topic::Entertainment,
    ];

    /// Dense class index for the categorization classifier.
    pub fn class_index(self) -> usize {
        match self {
            Topic::Politics => 0,
            Topic::Health => 1,
            Topic::Sports => 2,
            Topic::Tech => 3,
            Topic::Entertainment => 4,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Topic::Politics => "politics",
            Topic::Health => "health",
            Topic::Sports => "sports",
            Topic::Tech => "tech",
            Topic::Entertainment => "entertainment",
        }
    }

    /// The topic's content vocabulary.
    pub fn vocabulary(self) -> &'static [&'static str] {
        match self {
            Topic::Politics => POLITICS,
            Topic::Health => HEALTH,
            Topic::Sports => SPORTS,
            Topic::Tech => TECH,
            Topic::Entertainment => ENTERTAINMENT,
        }
    }

    /// Sensitive, frequently-perturbed targets within this topic.
    pub fn sensitive_targets(self) -> &'static [&'static str] {
        match self {
            Topic::Politics => &[
                "democrats",
                "republicans",
                "muslim",
                "chinese",
                "immigrants",
            ],
            Topic::Health => &["vaccine", "suicide", "depression", "abortion", "overdose"],
            Topic::Sports => &["doping", "gambling", "cheating"],
            Topic::Tech => &["porn", "hackers", "censorship"],
            Topic::Entertainment => &["lesbian", "racist", "scandal"],
        }
    }
}

/// Function words (never perturbed, glue for templates).
pub const FUNCTION_WORDS: &[&str] = &[
    "the",
    "a",
    "an",
    "and",
    "or",
    "but",
    "if",
    "then",
    "because",
    "about",
    "with",
    "without",
    "into",
    "onto",
    "over",
    "under",
    "again",
    "very",
    "really",
    "just",
    "still",
    "even",
    "also",
    "only",
    "not",
    "never",
    "always",
    "sometimes",
    "often",
    "now",
    "today",
    "yesterday",
    "tomorrow",
    "here",
    "there",
    "this",
    "that",
    "these",
    "those",
    "they",
    "them",
    "their",
    "we",
    "our",
    "you",
    "your",
    "he",
    "she",
    "his",
    "her",
    "it",
    "its",
    "who",
    "what",
    "when",
    "where",
    "why",
    "how",
    "all",
    "some",
    "any",
    "many",
    "much",
    "more",
    "most",
    "few",
    "less",
    "least",
    "own",
    "other",
    "another",
    "such",
    "both",
    "each",
    "every",
    "no",
    "nor",
    "too",
    "so",
    "than",
    "of",
    "in",
    "on",
    "at",
    "by",
    "for",
    "from",
    "to",
    "up",
    "down",
    "out",
    "off",
    "as",
    "is",
    "are",
    "was",
    "were",
    "be",
    "been",
    "being",
    "have",
    "has",
    "had",
    "do",
    "does",
    "did",
    "will",
    "would",
    "can",
    "could",
    "should",
    "may",
    "might",
    "must",
    "shall",
];

/// Politics vocabulary.
pub const POLITICS: &[&str] = &[
    "democrats",
    "republicans",
    "senate",
    "congress",
    "election",
    "ballot",
    "vote",
    "voters",
    "president",
    "senator",
    "governor",
    "campaign",
    "policy",
    "legislation",
    "bill",
    "law",
    "debate",
    "caucus",
    "primary",
    "midterms",
    "liberal",
    "conservative",
    "progressive",
    "moderate",
    "coalition",
    "filibuster",
    "impeachment",
    "lobbyist",
    "mandate",
    "reform",
    "borders",
    "immigration",
    "immigrants",
    "taxes",
    "budget",
    "deficit",
    "inflation",
    "economy",
    "muslim",
    "chinese",
    "russia",
    "sanctions",
    "treaty",
    "diplomat",
    "protest",
    "rally",
    "supporters",
    "opposition",
    "scandal",
    "corruption",
    "media",
    "propaganda",
    "freedom",
    "rights",
    "amendment",
    "constitution",
    "court",
    "justice",
    "ruling",
    "veto",
    "majority",
    "minority",
    "district",
    "county",
    "federal",
    "state",
    "national",
    "capitol",
];

/// Health vocabulary.
pub const HEALTH: &[&str] = &[
    "vaccine",
    "vaccination",
    "mandate",
    "booster",
    "doses",
    "pandemic",
    "virus",
    "variant",
    "infection",
    "immunity",
    "hospital",
    "clinic",
    "doctor",
    "nurse",
    "patient",
    "treatment",
    "therapy",
    "medicine",
    "prescription",
    "symptoms",
    "diagnosis",
    "recovery",
    "quarantine",
    "masks",
    "lockdown",
    "outbreak",
    "epidemic",
    "disease",
    "illness",
    "chronic",
    "mental",
    "depression",
    "anxiety",
    "suicide",
    "overdose",
    "addiction",
    "wellness",
    "fitness",
    "nutrition",
    "diet",
    "exercise",
    "sleep",
    "stress",
    "insurance",
    "medicare",
    "abortion",
    "surgery",
    "emergency",
    "ambulance",
    "pharmacy",
    "trial",
    "research",
    "study",
    "science",
    "effectiveness",
    "safety",
    "risks",
    "benefits",
    "experts",
    "guidelines",
];

/// Sports vocabulary.
pub const SPORTS: &[&str] = &[
    "match",
    "game",
    "season",
    "league",
    "playoff",
    "championship",
    "tournament",
    "finals",
    "team",
    "coach",
    "player",
    "striker",
    "goalkeeper",
    "quarterback",
    "pitcher",
    "captain",
    "goal",
    "score",
    "points",
    "win",
    "loss",
    "draw",
    "defeat",
    "victory",
    "record",
    "transfer",
    "contract",
    "injury",
    "training",
    "stadium",
    "fans",
    "referee",
    "penalty",
    "offside",
    "foul",
    "doping",
    "gambling",
    "cheating",
    "underdog",
    "favorite",
    "ranking",
    "medal",
    "olympics",
    "marathon",
    "sprint",
    "basketball",
    "football",
    "soccer",
    "baseball",
    "hockey",
    "tennis",
    "golf",
    "boxing",
    "racing",
];

/// Tech vocabulary.
pub const TECH: &[&str] = &[
    "software",
    "hardware",
    "startup",
    "platform",
    "algorithm",
    "database",
    "server",
    "cloud",
    "network",
    "internet",
    "browser",
    "website",
    "application",
    "update",
    "release",
    "launch",
    "feature",
    "interface",
    "privacy",
    "security",
    "encryption",
    "hackers",
    "breach",
    "leak",
    "malware",
    "phishing",
    "password",
    "authentication",
    "censorship",
    "moderation",
    "content",
    "users",
    "accounts",
    "profiles",
    "posts",
    "comments",
    "likes",
    "shares",
    "followers",
    "trending",
    "viral",
    "streaming",
    "gaming",
    "console",
    "smartphone",
    "gadget",
    "chip",
    "processor",
    "battery",
    "robot",
    "automation",
    "porn",
    "spam",
    "bots",
];

/// Entertainment vocabulary.
pub const ENTERTAINMENT: &[&str] = &[
    "movie",
    "film",
    "director",
    "actor",
    "actress",
    "celebrity",
    "premiere",
    "trailer",
    "sequel",
    "franchise",
    "blockbuster",
    "boxoffice",
    "album",
    "single",
    "concert",
    "tour",
    "festival",
    "award",
    "oscars",
    "grammys",
    "nomination",
    "drama",
    "comedy",
    "thriller",
    "horror",
    "romance",
    "documentary",
    "series",
    "episode",
    "season",
    "finale",
    "streaming",
    "soundtrack",
    "lyrics",
    "band",
    "singer",
    "rapper",
    "audience",
    "critics",
    "review",
    "rating",
    "scandal",
    "gossip",
    "interview",
    "paparazzi",
    "lesbian",
    "racist",
    "diva",
];

/// Positive sentiment words.
pub const SENTIMENT_POSITIVE: &[&str] = &[
    "love",
    "loved",
    "great",
    "wonderful",
    "amazing",
    "fantastic",
    "excellent",
    "brilliant",
    "beautiful",
    "awesome",
    "superb",
    "perfect",
    "happy",
    "glad",
    "delighted",
    "proud",
    "hopeful",
    "inspiring",
    "impressive",
    "outstanding",
    "remarkable",
    "refreshing",
    "enjoyable",
    "pleasant",
    "friendly",
    "helpful",
    "honest",
    "fair",
    "strong",
    "smart",
    "thoughtful",
    "supportive",
    "grateful",
    "thankful",
    "best",
    "better",
    "good",
    "win",
    "winning",
    "success",
    "successful",
    "progress",
    "improvement",
    "promising",
    "safe",
    "effective",
    "reliable",
    "trustworthy",
    "celebrate",
    "recommend",
    "appreciate",
];

/// Negative sentiment words.
pub const SENTIMENT_NEGATIVE: &[&str] = &[
    "hate",
    "hated",
    "terrible",
    "awful",
    "horrible",
    "disgusting",
    "dreadful",
    "appalling",
    "pathetic",
    "miserable",
    "angry",
    "furious",
    "outraged",
    "disappointed",
    "disappointing",
    "sad",
    "worried",
    "scared",
    "afraid",
    "dangerous",
    "harmful",
    "toxic",
    "corrupt",
    "dishonest",
    "unfair",
    "weak",
    "stupid",
    "foolish",
    "reckless",
    "shameful",
    "disgraceful",
    "worst",
    "worse",
    "bad",
    "fail",
    "failing",
    "failure",
    "disaster",
    "crisis",
    "collapse",
    "broken",
    "useless",
    "worthless",
    "lies",
    "lying",
    "fraud",
    "scam",
    "betrayal",
    "threat",
    "ruined",
    "destroy",
    "destroying",
];

/// Mild insults for the toxicity corpus (kept non-graphic deliberately —
/// the experiments only need a separable toxic register).
pub const TOXIC_WORDS: &[&str] = &[
    "idiot",
    "idiots",
    "stupid",
    "moron",
    "morons",
    "loser",
    "losers",
    "clown",
    "clowns",
    "trash",
    "garbage",
    "pathetic",
    "dumb",
    "fool",
    "fools",
    "ignorant",
    "disgusting",
    "worthless",
    "coward",
    "cowards",
    "liar",
    "liars",
    "crook",
    "crooks",
    "parasite",
    "parasites",
    "traitor",
    "traitors",
    "scum",
    "creep",
    "creeps",
    "jerk",
    "jerks",
    "hypocrite",
    "hypocrites",
    "sheep",
    "bootlicker",
    "shill",
    "shills",
    "troll",
    "trolls",
];

/// General filler content words (verbs/nouns used across topics).
pub const GENERAL: &[&str] = &[
    "people",
    "person",
    "world",
    "country",
    "city",
    "community",
    "family",
    "friends",
    "children",
    "school",
    "work",
    "job",
    "money",
    "time",
    "year",
    "week",
    "day",
    "night",
    "morning",
    "story",
    "news",
    "report",
    "reports",
    "statement",
    "announcement",
    "decision",
    "plan",
    "plans",
    "idea",
    "ideas",
    "problem",
    "problems",
    "solution",
    "question",
    "questions",
    "answer",
    "answers",
    "reason",
    "reasons",
    "result",
    "results",
    "change",
    "changes",
    "situation",
    "moment",
    "thing",
    "things",
    "way",
    "ways",
    "place",
    "home",
    "house",
    "street",
    "everyone",
    "everybody",
    "nobody",
    "someone",
    "something",
    "nothing",
    "dirty",
    "clean",
    "announced",
    "checked",
    "check",
    "talking",
    "saying",
    "thinking",
    "feeling",
    "watching",
    "reading",
    "writing",
    "sharing",
    "posting",
    "spreading",
    "pushing",
    "blocking",
    "supporting",
    "opposing",
    "defending",
    "attacking",
    "claiming",
    "denying",
    "admitting",
    "ignoring",
    "demanding",
    "promising",
];

/// Every distinct word across all lexicons — the "correctly-spelled English
/// dictionary" for normalization. Includes the literal glue words of the
/// sentence templates so generated clean text is fully in-dictionary.
pub fn english_lexicon() -> &'static [&'static str] {
    static LEXICON: OnceLock<Vec<&'static str>> = OnceLock::new();
    LEXICON.get_or_init(|| {
        let mut set: HashSet<&'static str> = HashSet::new();
        set.extend(FUNCTION_WORDS);
        set.extend(GENERAL);
        set.extend(SENTIMENT_POSITIVE);
        set.extend(SENTIMENT_NEGATIVE);
        set.extend(TOXIC_WORDS);
        for t in Topic::ALL {
            set.extend(t.vocabulary());
            set.extend(t.sensitive_targets());
        }
        // Template glue: every literal (non-slot) word in the templates.
        for template in crate::templates::POSITIVE_TEMPLATES
            .iter()
            .chain(crate::templates::NEGATIVE_TEMPLATES)
            .chain(crate::templates::TOXIC_TEMPLATES)
        {
            for word in template.split_whitespace() {
                if !word.contains('{') && word.bytes().all(|b| b.is_ascii_lowercase()) {
                    set.insert(word);
                }
            }
        }
        let mut v: Vec<&'static str> = set.into_iter().collect();
        v.sort_unstable();
        v
    })
}

/// Is `w` (case-insensitively) a dictionary word?
pub fn is_english_word(w: &str) -> bool {
    static SET: OnceLock<HashSet<String>> = OnceLock::new();
    let set = SET.get_or_init(|| english_lexicon().iter().map(|s| s.to_string()).collect());
    // Tokens on the Normalization/ingest hot paths are usually already
    // lowercase; skip the per-probe String allocation for them.
    if w.bytes().any(|b| b.is_ascii_uppercase()) {
        set.contains(&w.to_ascii_lowercase())
    } else {
        set.contains(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexicon_is_deduped_sorted_and_sizeable() {
        let lex = english_lexicon();
        assert!(lex.len() > 400, "got {}", lex.len());
        assert!(lex.windows(2).all(|w| w[0] < w[1]), "sorted, no dups");
    }

    #[test]
    fn lexicon_words_are_lowercase_ascii() {
        for w in english_lexicon() {
            assert!(
                w.bytes().all(|b| b.is_ascii_lowercase()),
                "{w} must be lowercase ascii"
            );
        }
    }

    #[test]
    fn membership_checks_case_insensitively() {
        assert!(is_english_word("democrats"));
        assert!(is_english_word("DEMOCRATS"));
        assert!(is_english_word("Vaccine"));
        assert!(!is_english_word("demokrats"));
        assert!(!is_english_word("dem0crats"));
        assert!(!is_english_word(""));
    }

    #[test]
    fn sensitive_targets_are_dictionary_words() {
        for t in Topic::ALL {
            for w in t.sensitive_targets() {
                assert!(is_english_word(w), "{w}");
            }
        }
    }

    #[test]
    fn paper_examples_present() {
        for w in [
            "democrats",
            "republicans",
            "vaccine",
            "muslim",
            "chinese",
            "suicide",
            "porn",
            "depression",
            "lesbian",
        ] {
            assert!(is_english_word(w), "{w} from the paper must be present");
        }
    }

    #[test]
    fn topic_indices_dense_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for t in Topic::ALL {
            assert!(t.class_index() < Topic::ALL.len());
            assert!(seen.insert(t.class_index()));
            assert!(!t.vocabulary().is_empty());
            assert!(!t.sensitive_targets().is_empty());
            assert!(!t.name().is_empty());
        }
    }

    #[test]
    fn sentiment_lexicons_disjoint() {
        let pos: HashSet<_> = SENTIMENT_POSITIVE.iter().collect();
        let neg: HashSet<_> = SENTIMENT_NEGATIVE.iter().collect();
        assert!(pos.is_disjoint(&neg));
    }
}
