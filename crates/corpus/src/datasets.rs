//! Named dataset builders mimicking the paper's curated corpora.
//!
//! §III-A: *"Most of them are originally curated for detecting abusive
//! materials online (e.g., rumors [4], hatespeech [5], cyberbullying [6])
//! and often contain many perturbations."* Each builder tunes the generator
//! toward the register of its namesake; together they seed the token
//! database the way the paper's mix of datasets does.

use crate::generator::{generate, CorpusConfig, GeneratedCorpus};

/// Rumour-verification-style data (Kochkina et al., ACL'18): heavy
/// politics/health, mildly negative, some perturbation.
pub fn rumor_dataset(seed: u64, n_docs: usize) -> GeneratedCorpus {
    generate(CorpusConfig {
        n_docs,
        seed,
        topic_weights: [2.0, 2.0, 0.3, 0.7, 0.5],
        negative_fraction: 0.6,
        toxic_given_negative: 0.15,
        perturb_prob_negative: 0.45,
        perturb_prob_positive: 0.10,
        secondary_perturb_prob: 0.08,
    })
}

/// Hate-speech-detection-style data (Gomez et al., WACV'20): highly
/// negative and toxic, the densest perturbation rates (evasion attempts).
pub fn hatespeech_dataset(seed: u64, n_docs: usize) -> GeneratedCorpus {
    generate(CorpusConfig {
        n_docs,
        seed,
        topic_weights: [2.5, 1.0, 0.5, 0.8, 1.2],
        negative_fraction: 0.8,
        toxic_given_negative: 0.75,
        perturb_prob_negative: 0.65,
        perturb_prob_positive: 0.15,
        secondary_perturb_prob: 0.15,
    })
}

/// Cyberbullying / Wikipedia-personal-attacks-style data (Wulczyn et al.):
/// personal, toxic, moderate perturbation.
pub fn cyberbullying_dataset(seed: u64, n_docs: usize) -> GeneratedCorpus {
    generate(CorpusConfig {
        n_docs,
        seed,
        topic_weights: [1.0, 1.0, 1.5, 1.5, 1.5],
        negative_fraction: 0.7,
        toxic_given_negative: 0.6,
        perturb_prob_negative: 0.5,
        perturb_prob_positive: 0.1,
        secondary_perturb_prob: 0.12,
    })
}

/// The combined curation mix the token database is built from: one part
/// rumor, one part hate speech, one part cyberbullying.
pub fn curation_mix(seed: u64, n_docs_each: usize) -> Vec<GeneratedCorpus> {
    vec![
        rumor_dataset(seed, n_docs_each),
        hatespeech_dataset(seed.wrapping_add(1), n_docs_each),
        cyberbullying_dataset(seed.wrapping_add(2), n_docs_each),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sentiment;

    #[test]
    fn hatespeech_is_most_toxic() {
        let rumor = rumor_dataset(1, 800);
        let hate = hatespeech_dataset(1, 800);
        let toxic_frac = |c: &GeneratedCorpus| {
            c.docs.iter().filter(|d| d.toxic).count() as f64 / c.docs.len() as f64
        };
        assert!(
            toxic_frac(&hate) > toxic_frac(&rumor) + 0.2,
            "{} vs {}",
            toxic_frac(&hate),
            toxic_frac(&rumor)
        );
    }

    #[test]
    fn hatespeech_is_most_perturbed() {
        let rumor = rumor_dataset(2, 800);
        let hate = hatespeech_dataset(2, 800);
        assert!(hate.perturbed_fraction() > rumor.perturbed_fraction());
    }

    #[test]
    fn all_datasets_skew_negative() {
        for c in curation_mix(3, 500) {
            let neg = c
                .docs
                .iter()
                .filter(|d| d.sentiment == Sentiment::Negative)
                .count() as f64
                / c.docs.len() as f64;
            assert!(neg > 0.5, "abuse corpora are negative-heavy: {neg}");
        }
    }

    #[test]
    fn curation_mix_has_three_distinct_corpora() {
        let mix = curation_mix(4, 50);
        assert_eq!(mix.len(), 3);
        assert_ne!(mix[0].docs, mix[1].docs);
        assert_ne!(mix[1].docs, mix[2].docs);
    }
}
