//! The labelled synthetic corpus generator.

use cryptext_attacks::{HumanPerturber, TokenPerturber};
use cryptext_common::SplitMix64;
use cryptext_tokenizer::{splice, tokenize};

use crate::lexicon::{Topic, GENERAL, SENTIMENT_NEGATIVE, SENTIMENT_POSITIVE, TOXIC_WORDS};
use crate::templates::{NEGATIVE_TEMPLATES, POSITIVE_TEMPLATES, TOXIC_TEMPLATES};
use crate::Sentiment;

/// Configuration for [`generate`].
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Number of documents.
    pub n_docs: usize,
    /// Master seed; equal configs generate identical corpora.
    pub seed: u64,
    /// Relative topic weights (need not sum to 1).
    pub topic_weights: [f64; 5],
    /// Probability a document is negative.
    pub negative_fraction: f64,
    /// Probability a *negative* document is toxic/abusive.
    pub toxic_given_negative: f64,
    /// Probability the sensitive target of a *negative* document gets
    /// perturbed. The wild-data regularity (§III-B): perturbations
    /// concentrate in negative/abusive content.
    pub perturb_prob_negative: f64,
    /// Same for positive documents (much lower in the wild).
    pub perturb_prob_positive: f64,
    /// Probability of additionally perturbing one non-target content word.
    pub secondary_perturb_prob: f64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            n_docs: 1_000,
            seed: 42,
            topic_weights: [1.0; 5],
            negative_fraction: 0.5,
            toxic_given_negative: 0.4,
            perturb_prob_negative: 0.55,
            perturb_prob_positive: 0.12,
            secondary_perturb_prob: 0.10,
        }
    }
}

impl CorpusConfig {
    /// A small corpus for unit tests.
    pub fn small(seed: u64) -> Self {
        CorpusConfig {
            n_docs: 120,
            seed,
            ..CorpusConfig::default()
        }
    }
}

/// Ground truth for one perturbed token.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PerturbationRecord {
    /// The clean dictionary word that was perturbed.
    pub original: String,
    /// The perturbed surface form actually placed in the text.
    pub perturbed: String,
}

/// One generated, fully-labelled document.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LabeledDoc {
    /// Post text (possibly containing perturbations).
    pub text: String,
    /// The same text before perturbation (gold for normalization).
    pub clean_text: String,
    /// Topic label.
    pub topic: Topic,
    /// Sentiment label.
    pub sentiment: Sentiment,
    /// Toxicity label.
    pub toxic: bool,
    /// Which tokens were perturbed, in text order.
    pub perturbations: Vec<PerturbationRecord>,
}

impl LabeledDoc {
    /// Was anything perturbed?
    pub fn is_perturbed(&self) -> bool {
        !self.perturbations.is_empty()
    }
}

/// A generated corpus plus its provenance.
#[derive(Debug, Clone)]
pub struct GeneratedCorpus {
    /// The documents.
    pub docs: Vec<LabeledDoc>,
    /// The configuration that produced them.
    pub config: CorpusConfig,
}

impl GeneratedCorpus {
    /// Just the texts.
    pub fn texts(&self) -> Vec<String> {
        self.docs.iter().map(|d| d.text.clone()).collect()
    }

    /// Fraction of documents that carry at least one perturbation.
    pub fn perturbed_fraction(&self) -> f64 {
        if self.docs.is_empty() {
            return 0.0;
        }
        self.docs.iter().filter(|d| d.is_perturbed()).count() as f64 / self.docs.len() as f64
    }

    /// Fraction of documents labelled negative.
    pub fn negative_fraction(&self) -> f64 {
        if self.docs.is_empty() {
            return 0.0;
        }
        self.docs
            .iter()
            .filter(|d| d.sentiment == Sentiment::Negative)
            .count() as f64
            / self.docs.len() as f64
    }
}

fn pick<'a>(rng: &mut SplitMix64, items: &[&'a str]) -> &'a str {
    rng.choose(items).copied().unwrap_or("thing")
}

fn fill_template(
    template: &str,
    rng: &mut SplitMix64,
    topic: Topic,
    sentiment: Sentiment,
) -> (String, String) {
    let target = pick(rng, topic.sensitive_targets());
    let sent_lex = match sentiment {
        Sentiment::Positive => SENTIMENT_POSITIVE,
        Sentiment::Negative => SENTIMENT_NEGATIVE,
    };
    let mut out = String::with_capacity(template.len() + 32);
    let mut rest = template;
    while let Some(start) = rest.find('{') {
        out.push_str(&rest[..start]);
        let end = rest[start..]
            .find('}')
            .map(|e| start + e)
            .expect("closed slot");
        let slot = &rest[start + 1..end];
        let word = match slot {
            "target" => target,
            "topic" => pick(rng, topic.vocabulary()),
            "sent" | "sent2" => pick(rng, sent_lex),
            "gen" => pick(rng, GENERAL),
            "toxic" | "toxic2" => pick(rng, TOXIC_WORDS),
            other => panic!("unknown template slot {other}"),
        };
        out.push_str(word);
        rest = &rest[end + 1..];
    }
    out.push_str(rest);
    (out, target.to_string())
}

/// Generate a labelled corpus.
pub fn generate(config: CorpusConfig) -> GeneratedCorpus {
    let mut rng = SplitMix64::new(config.seed);
    let perturber = HumanPerturber::sound_preserving();
    let mut docs = Vec::with_capacity(config.n_docs);

    for _ in 0..config.n_docs {
        let topic = Topic::ALL[rng.weighted_index(&config.topic_weights).unwrap_or(0)];
        let sentiment = if rng.chance(config.negative_fraction) {
            Sentiment::Negative
        } else {
            Sentiment::Positive
        };
        let toxic = match sentiment {
            Sentiment::Negative => rng.chance(config.toxic_given_negative),
            Sentiment::Positive => rng.chance(0.02),
        };
        let template = if toxic {
            pick_template(&mut rng, TOXIC_TEMPLATES)
        } else {
            match sentiment {
                Sentiment::Positive => pick_template(&mut rng, POSITIVE_TEMPLATES),
                Sentiment::Negative => pick_template(&mut rng, NEGATIVE_TEMPLATES),
            }
        };
        let (clean_text, target) = fill_template(template, &mut rng, topic, sentiment);

        // Perturbation pass over the clean text.
        let perturb_prob = match sentiment {
            Sentiment::Negative => config.perturb_prob_negative,
            Sentiment::Positive => config.perturb_prob_positive,
        };
        let tokens = tokenize(&clean_text);
        let mut replacements: Vec<(std::ops::Range<usize>, String)> = Vec::new();
        let mut records: Vec<PerturbationRecord> = Vec::new();
        let mut perturbed_target = false;
        let mut perturbed_secondary = false;
        for tok in tokens.iter().filter(|t| t.is_word()) {
            if records.len() >= 3 {
                break;
            }
            let is_target = tok.text.eq_ignore_ascii_case(&target);
            let lower = tok.text.to_ascii_lowercase();
            // Signal words are what evasive users actually perturb in the
            // wild: insults (to dodge toxicity moderation) and strong
            // sentiment carriers.
            let is_signal = TOXIC_WORDS.contains(&lower.as_str())
                || SENTIMENT_NEGATIVE.contains(&lower.as_str())
                || SENTIMENT_POSITIVE.contains(&lower.as_str());
            let fire = if is_target {
                !perturbed_target && rng.chance(perturb_prob)
            } else if is_signal {
                rng.chance(perturb_prob * 0.8)
            } else {
                !perturbed_secondary
                    && tok.text.len() >= 5
                    && rng.chance(config.secondary_perturb_prob)
            };
            if !fire {
                continue;
            }
            if let Some(p) = perturber.perturb_token(&tok.text, &mut rng) {
                if is_target {
                    perturbed_target = true;
                } else if !is_signal {
                    perturbed_secondary = true;
                }
                records.push(PerturbationRecord {
                    original: tok.text.clone(),
                    perturbed: p.clone(),
                });
                replacements.push((tok.span.clone(), p));
            }
        }
        let text = if replacements.is_empty() {
            clean_text.clone()
        } else {
            splice(&clean_text, &replacements)
        };

        docs.push(LabeledDoc {
            text,
            clean_text,
            topic,
            sentiment,
            toxic,
            perturbations: records,
        });
    }
    GeneratedCorpus { docs, config }
}

fn pick_template<'a>(rng: &mut SplitMix64, templates: &[&'a str]) -> &'a str {
    rng.choose(templates)
        .copied()
        .expect("non-empty template set")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexicon::is_english_word;

    #[test]
    fn deterministic_per_seed() {
        let a = generate(CorpusConfig::small(7));
        let b = generate(CorpusConfig::small(7));
        assert_eq!(a.docs, b.docs);
        let c = generate(CorpusConfig::small(8));
        assert_ne!(a.docs, c.docs);
    }

    #[test]
    fn generates_requested_count() {
        let corpus = generate(CorpusConfig::small(1));
        assert_eq!(corpus.docs.len(), 120);
    }

    #[test]
    fn labels_match_configured_rates_roughly() {
        let corpus = generate(CorpusConfig {
            n_docs: 2_000,
            ..CorpusConfig::default()
        });
        let neg = corpus.negative_fraction();
        assert!((0.45..0.55).contains(&neg), "negative fraction {neg}");
        let toxic = corpus.docs.iter().filter(|d| d.toxic).count() as f64 / 2_000.0;
        // ≈ 0.5·0.4 + 0.5·0.02 = 0.21.
        assert!((0.15..0.27).contains(&toxic), "toxic fraction {toxic}");
    }

    #[test]
    fn negative_docs_perturb_more() {
        let corpus = generate(CorpusConfig {
            n_docs: 3_000,
            ..CorpusConfig::default()
        });
        let frac = |s: Sentiment| {
            let docs: Vec<_> = corpus.docs.iter().filter(|d| d.sentiment == s).collect();
            docs.iter().filter(|d| d.is_perturbed()).count() as f64 / docs.len() as f64
        };
        let neg = frac(Sentiment::Negative);
        let pos = frac(Sentiment::Positive);
        assert!(
            neg > pos + 0.2,
            "perturbations concentrate in negative content: {neg} vs {pos}"
        );
    }

    #[test]
    fn perturbation_records_are_faithful() {
        let corpus = generate(CorpusConfig::small(3));
        for doc in &corpus.docs {
            for rec in &doc.perturbations {
                assert_ne!(rec.original, rec.perturbed);
                assert!(
                    doc.text.contains(&rec.perturbed),
                    "text {:?} contains {:?}",
                    doc.text,
                    rec.perturbed
                );
                assert!(
                    doc.clean_text.contains(&rec.original),
                    "clean {:?} contains {:?}",
                    doc.clean_text,
                    rec.original
                );
                assert!(is_english_word(&rec.original), "{}", rec.original);
                // Emphasis perturbations (stoRY) stay dictionary words
                // under case folding; every other strategy leaves the
                // dictionary.
                if is_english_word(&rec.perturbed) {
                    assert_eq!(
                        rec.perturbed.to_ascii_lowercase(),
                        rec.original.to_ascii_lowercase(),
                        "in-dictionary perturbation must be a pure case change"
                    );
                }
            }
            if doc.perturbations.is_empty() {
                assert_eq!(doc.text, doc.clean_text);
            }
        }
    }

    #[test]
    fn clean_text_is_all_dictionary_words() {
        let corpus = generate(CorpusConfig::small(4));
        for doc in &corpus.docs {
            for w in cryptext_tokenizer::words(&doc.clean_text) {
                assert!(is_english_word(&w), "{w} in {:?}", doc.clean_text);
            }
        }
    }

    #[test]
    fn toxic_docs_use_abusive_register() {
        let corpus = generate(CorpusConfig {
            n_docs: 500,
            ..CorpusConfig::default()
        });
        let toxic_docs: Vec<_> = corpus.docs.iter().filter(|d| d.toxic).collect();
        assert!(!toxic_docs.is_empty());
        let with_insult = toxic_docs
            .iter()
            .filter(|d| {
                cryptext_tokenizer::words(&d.clean_text)
                    .iter()
                    .any(|w| crate::lexicon::TOXIC_WORDS.contains(&w.as_str()))
            })
            .count();
        assert_eq!(
            with_insult,
            toxic_docs.len(),
            "every toxic doc has an insult"
        );
    }

    #[test]
    fn every_doc_mentions_a_sensitive_target_in_clean_form() {
        let corpus = generate(CorpusConfig::small(5));
        for doc in &corpus.docs {
            let words = cryptext_tokenizer::words(&doc.clean_text);
            assert!(
                doc.topic
                    .sensitive_targets()
                    .iter()
                    .any(|t| words.iter().any(|w| w == t)),
                "{:?} mentions a target of {:?}",
                doc.clean_text,
                doc.topic
            );
        }
    }

    #[test]
    fn topic_weights_skew_generation() {
        let corpus = generate(CorpusConfig {
            n_docs: 600,
            topic_weights: [1.0, 0.0, 0.0, 0.0, 0.0],
            ..CorpusConfig::default()
        });
        assert!(corpus.docs.iter().all(|d| d.topic == Topic::Politics));
    }

    #[test]
    fn zero_docs_is_fine() {
        let corpus = generate(CorpusConfig {
            n_docs: 0,
            ..CorpusConfig::default()
        });
        assert!(corpus.docs.is_empty());
        assert_eq!(corpus.perturbed_fraction(), 0.0);
        assert_eq!(corpus.negative_fraction(), 0.0);
    }
}
