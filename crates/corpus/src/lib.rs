//! # cryptext-corpus
//!
//! Embedded lexicons and synthetic corpus generators.
//!
//! The paper curates its token database from public abuse-detection
//! corpora — rumors (Kochkina et al.), hate speech (Gomez et al.),
//! cyberbullying / Wikipedia personal attacks (Wulczyn et al.) — and keeps
//! enriching it from live Twitter. Those datasets cannot ship here, so this
//! crate generates *synthetic equivalents*: topic- and sentiment-conditioned
//! social-media-style posts, seeded with human-written perturbations from
//! [`cryptext_attacks::HumanPerturber`] at configurable rates.
//!
//! What must hold for the substitution to be faithful (and is tested):
//!
//! * posts mention *sensitive targets* (democrats, vaccine, muslim, …) that
//!   carry perturbations in the wild;
//! * perturbation probability is higher in negative/abusive posts — the
//!   empirical regularity behind the paper's keyword-enrichment use case
//!   (§III-B: perturbed queries surface more negative content);
//! * every document carries gold labels (topic, sentiment, toxicity) plus
//!   the ground-truth perturbation map, so experiments can score retrieval
//!   and normalization exactly.

#![warn(missing_docs)]

pub mod datasets;
pub mod generator;
pub mod lexicon;
pub mod templates;

pub use generator::{CorpusConfig, GeneratedCorpus, LabeledDoc, PerturbationRecord};
pub use lexicon::{english_lexicon, is_english_word, Topic};

/// Document sentiment polarity (binary, as in the paper's §III-B
/// percentages: a tweet is either negative or not).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Sentiment {
    /// Positive-or-neutral.
    Positive,
    /// Negative.
    Negative,
}

impl Sentiment {
    /// Dense class index for classifiers (`Positive = 0`).
    pub fn class_index(self) -> usize {
        match self {
            Sentiment::Positive => 0,
            Sentiment::Negative => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentiment_class_indices_are_dense() {
        assert_eq!(Sentiment::Positive.class_index(), 0);
        assert_eq!(Sentiment::Negative.class_index(), 1);
    }
}
