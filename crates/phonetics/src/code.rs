//! The [`SoundexCode`] key type.

use std::borrow::Borrow;
use std::fmt;

/// A phonetic encoding produced by either Soundex variant.
///
/// Codes are short ASCII strings like `RE1425` or `TH000`: an uppercase
/// literal prefix (1 character classically, `k+1` characters in the
/// customized variant) followed by digit groups padded to at least three
/// digits. They key the `H_k` hash maps of the token database, so the type
/// implements `Borrow<str>` for zero-copy map probes.
#[derive(
    Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct SoundexCode(String);

impl SoundexCode {
    /// Wrap a pre-validated code string. Intended for the encoders and for
    /// deserializing persisted databases.
    pub fn from_string(code: String) -> Self {
        SoundexCode(code)
    }

    /// The code as a string slice.
    #[inline]
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The literal (alphabetic) prefix of the code.
    pub fn prefix(&self) -> &str {
        let end = self
            .0
            .find(|c: char| c.is_ascii_digit())
            .unwrap_or(self.0.len());
        &self.0[..end]
    }

    /// The digit portion of the code.
    pub fn digits(&self) -> &str {
        let start = self
            .0
            .find(|c: char| c.is_ascii_digit())
            .unwrap_or(self.0.len());
        &self.0[start..]
    }

    /// Consume the code, yielding the underlying string.
    pub fn into_string(self) -> String {
        self.0
    }
}

impl fmt::Display for SoundexCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl Borrow<str> for SoundexCode {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for SoundexCode {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl From<&str> for SoundexCode {
    fn from(s: &str) -> Self {
        SoundexCode(s.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_and_digits_split() {
        let c = SoundexCode::from("RE1425");
        assert_eq!(c.prefix(), "RE");
        assert_eq!(c.digits(), "1425");
        assert_eq!(c.to_string(), "RE1425");
    }

    #[test]
    fn all_prefix_or_all_digits() {
        let c = SoundexCode::from("TH");
        assert_eq!(c.prefix(), "TH");
        assert_eq!(c.digits(), "");
        let c = SoundexCode::from("000");
        assert_eq!(c.prefix(), "");
        assert_eq!(c.digits(), "000");
    }

    #[test]
    fn borrow_str_enables_map_probe_without_alloc() {
        let mut m: std::collections::HashMap<SoundexCode, u32> = std::collections::HashMap::new();
        m.insert(SoundexCode::from("DI630"), 2);
        assert_eq!(m.get("DI630"), Some(&2), "&str probe via Borrow");
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut v = [
            SoundexCode::from("TH000"),
            SoundexCode::from("DI630"),
            SoundexCode::from("RE1425"),
        ];
        v.sort();
        assert_eq!(v[0].as_str(), "DI630");
        assert_eq!(v[2].as_str(), "TH000");
    }
}
