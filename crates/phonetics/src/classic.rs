//! Classic American Soundex, kept as the ablation baseline (§III-A argues
//! why it is insufficient for perturbed text).

use crate::{is_separator, soundex_digit, SoundexCode};

/// Encode `token` with classic American Soundex: first letter kept, the
/// rest mapped to digit groups, adjacent duplicates collapsed (`h`/`w` do
/// not break a run, vowels do), padded/truncated to exactly three digits.
///
/// Returns `None` when the token contains no ASCII letter to anchor the
/// code (classic Soundex has no notion of visual similarity — that is the
/// point of the customized variant).
pub fn classic_soundex(token: &str) -> Option<SoundexCode> {
    let mut letters = token
        .chars()
        .filter(|c| c.is_ascii_alphabetic())
        .map(|c| c.to_ascii_lowercase());
    let first = letters.next()?;

    let mut out = String::with_capacity(4);
    out.push(first.to_ascii_uppercase());

    let mut last_digit = soundex_digit(first);
    let mut digits = 0usize;
    for c in letters {
        if digits == 3 {
            break;
        }
        match soundex_digit(c) {
            Some(d) => {
                if last_digit != Some(d) {
                    out.push((b'0' + d) as char);
                    digits += 1;
                }
                last_digit = Some(d);
            }
            None => {
                if is_separator(c) {
                    last_digit = None;
                }
                // 'h' and 'w' neither code nor reset.
            }
        }
    }
    while digits < 3 {
        out.push('0');
        digits += 1;
    }
    Some(SoundexCode::from_string(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code(s: &str) -> String {
        classic_soundex(s).unwrap().into_string()
    }

    #[test]
    fn census_textbook_examples() {
        assert_eq!(code("Robert"), "R163");
        assert_eq!(code("Rupert"), "R163");
        assert_eq!(code("Ashcraft"), "A261", "h does not separate s/c");
        assert_eq!(code("Ashcroft"), "A261");
        assert_eq!(code("Tymczak"), "T522");
        assert_eq!(code("Pfister"), "P236", "initial double-group collapses");
        assert_eq!(code("Honeyman"), "H555");
    }

    #[test]
    fn paper_motivating_collision() {
        // §III-A: classic Soundex conflates losbian/lesbian ("L215").
        assert_eq!(code("losbian"), "L215");
        assert_eq!(code("lesbian"), "L215");
    }

    #[test]
    fn vowel_resets_duplicate_suppression() {
        // Two 's' separated by a vowel code twice...
        assert_eq!(code("sasas"), "S220");
        // ...but separated by 'h' they collapse.
        assert_eq!(code("sshss"), "S000");
    }

    #[test]
    fn case_insensitive() {
        assert_eq!(code("DemocRATs"), code("democrats"));
        assert_eq!(code("REPUBLICANS"), code("republicans"));
    }

    #[test]
    fn non_letters_ignored() {
        assert_eq!(code("o'brien"), code("obrien"));
        assert_eq!(code("mus-lim"), code("muslim"));
    }

    #[test]
    fn no_letters_is_none() {
        assert_eq!(classic_soundex(""), None);
        assert_eq!(classic_soundex("1234"), None, "classic is blind to leet");
        assert_eq!(classic_soundex("@@@"), None);
    }

    #[test]
    fn classic_is_blind_to_visual_substitution() {
        // The motivating failure: a leet consonant ('5' for 's') changes
        // the consonant signature, so the perturbation lands in a different
        // bucket and Look Up would miss it.
        assert_ne!(code("mu5lim"), code("muslim"));
        assert_ne!(code("cla55"), code("class"));
    }

    #[test]
    fn short_tokens_pad() {
        assert_eq!(code("a"), "A000");
        assert_eq!(code("at"), "A300");
    }

    #[test]
    fn exactly_four_chars_always() {
        for s in ["supercalifragilistic", "a", "rrrr", "schwarzenegger"] {
            assert_eq!(code(s).len(), 4, "{s}");
        }
    }
}
