//! # cryptext-phonetics
//!
//! Phonetic encodings for CrypText (§III-A of the paper).
//!
//! The token database groups tokens by *sound*. The paper starts from the
//! classic American [`Soundex`](classic::classic_soundex) algorithm and
//! customizes it in two ways:
//!
//! 1. **Visual similarity**: characters that merely *look* like letters
//!    (`@`, `1`, `5`, Cyrillic homoglyphs, accents) must encode the same as
//!    the letters they imitate, because human perturbations rely on those
//!    substitutions (`suic1de`, `dem0cr@ts`).
//! 2. **Phonetic level `k`**: the first `k+1` characters are kept literally
//!    in the code instead of just the first one. This fixes the classic
//!    algorithm's false collisions (`losbian` and `lesbian` share `L215`
//!    classically but get distinct codes `LO215` / `LE215` at `k = 1`).
//!
//! [`CustomSoundex`] implements the customized encoder; because some leet
//! glyphs are ambiguous (`1` is both `l` and `i`), [`CustomSoundex::encode_all`]
//! returns *every* reading's code and the token database indexes each.

#![warn(missing_docs)]

pub mod classic;
pub mod code;
pub mod custom;

pub use classic::classic_soundex;
pub use code::SoundexCode;
pub use custom::CustomSoundex;

/// The largest phonetic level the paper's database materializes (`H_k`,
/// `k ≤ 2`).
pub const MAX_PHONETIC_LEVEL: usize = 2;

/// Map one lowercase ASCII letter to its Soundex digit group, or `None` for
/// vowels and the non-coded letters (`a e i o u y h w`).
///
/// Groups: `b f p v → 1`, `c g j k q s x z → 2`, `d t → 3`, `l → 4`,
/// `m n → 5`, `r → 6`.
#[inline]
pub fn soundex_digit(c: char) -> Option<u8> {
    match c {
        'b' | 'f' | 'p' | 'v' => Some(1),
        'c' | 'g' | 'j' | 'k' | 'q' | 's' | 'x' | 'z' => Some(2),
        'd' | 't' => Some(3),
        'l' => Some(4),
        'm' | 'n' => Some(5),
        'r' => Some(6),
        _ => None,
    }
}

/// Is this letter a Soundex separator that *resets* duplicate suppression
/// (vowels and `y`)? `h`/`w` are dropped but do **not** reset, per the
/// classic American rule.
#[inline]
pub fn is_separator(c: char) -> bool {
    matches!(c, 'a' | 'e' | 'i' | 'o' | 'u' | 'y')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digit_groups_match_paper_rule_set() {
        // The paper cites {b, f, p, v} → "1" explicitly.
        for c in ['b', 'f', 'p', 'v'] {
            assert_eq!(soundex_digit(c), Some(1));
        }
        for c in ['c', 'g', 'j', 'k', 'q', 's', 'x', 'z'] {
            assert_eq!(soundex_digit(c), Some(2));
        }
        assert_eq!(soundex_digit('d'), Some(3));
        assert_eq!(soundex_digit('t'), Some(3));
        assert_eq!(soundex_digit('l'), Some(4));
        assert_eq!(soundex_digit('m'), Some(5));
        assert_eq!(soundex_digit('n'), Some(5));
        assert_eq!(soundex_digit('r'), Some(6));
    }

    #[test]
    fn vowels_and_hw_uncoded() {
        for c in ['a', 'e', 'i', 'o', 'u', 'y', 'h', 'w'] {
            assert_eq!(soundex_digit(c), None);
        }
    }

    #[test]
    fn separators_exclude_h_and_w() {
        assert!(is_separator('a'));
        assert!(is_separator('y'));
        assert!(!is_separator('h'));
        assert!(!is_separator('w'));
        assert!(!is_separator('b'));
    }
}
