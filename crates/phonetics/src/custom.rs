//! The CrypText customized Soundex (§III-A).
//!
//! Differences from [`classic_soundex`](crate::classic::classic_soundex):
//!
//! 1. Tokens are first reduced to their *letter skeleton*: visually-similar
//!    digits, symbols, homoglyphs and accents fold to the letters they
//!    imitate (`dem0cr@ts → democrats`), and joiners like `-` vanish
//!    (`mus-lim → muslim`).
//! 2. The first `k+1` skeleton characters are kept literally (uppercased)
//!    as the code prefix — the paper's *phonetic level* parameter. `k = 0`
//!    reduces to the classic prefix behaviour.
//! 3. Digits are padded to at least three but **not truncated** by default:
//!    long tokens keep their full consonant signature, which sharpens
//!    bucket discrimination for the long political vocabulary the paper
//!    studies. `max_digits` restores classic truncation when wanted.
//! 4. Ambiguous leet glyphs (`1` = `l` or `i`) yield *multiple* codes via
//!    [`CustomSoundex::encode_all`]; the token database indexes every one.

use cryptext_confusables::{letter_skeleton, skeleton_variants};

use crate::{is_separator, soundex_digit, SoundexCode};

/// The customized Soundex encoder. Cheap to copy; construct once per
/// phonetic level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CustomSoundex {
    k: usize,
    max_digits: Option<usize>,
}

impl CustomSoundex {
    /// Encoder at phonetic level `k` (the first `k+1` characters are kept
    /// literally). The paper materializes `k ∈ {0, 1, 2}` and defaults to
    /// `k = 1` for Look Up.
    pub fn new(k: usize) -> Self {
        CustomSoundex {
            k,
            max_digits: None,
        }
    }

    /// Restrict the digit portion to at most `max_digits` digits
    /// (classic Soundex behaviour is `k = 0` with `max_digits = 3`).
    pub fn with_max_digits(mut self, max_digits: usize) -> Self {
        self.max_digits = Some(max_digits);
        self
    }

    /// The phonetic level `k`.
    #[inline]
    pub fn level(&self) -> usize {
        self.k
    }

    /// Encode the *primary* visual reading of `token`.
    ///
    /// Returns `None` when the token has no letter interpretation at all
    /// (pure punctuation, emoji).
    pub fn encode(&self, token: &str) -> Option<SoundexCode> {
        let sk = letter_skeleton(token);
        self.encode_skeleton(&sk)
    }

    /// Encode *every* visual reading of `token` (ambiguous leet glyphs
    /// expand, capped upstream), deduplicated, primary reading first.
    ///
    /// The token database inserts a token under each of these codes, and
    /// Look Up probes each, so `suic1de` is findable from `suicide` even
    /// though `1`'s primary reading is `l`.
    pub fn encode_all(&self, token: &str) -> Vec<SoundexCode> {
        let mut out: Vec<SoundexCode> = Vec::with_capacity(2);
        self.encode_all_into(token, &mut out);
        out
    }

    /// Like [`CustomSoundex::encode_all`], but clears and fills a
    /// caller-provided buffer so query-side encoding reuses one allocation
    /// across lookups (the read-path hot loop drives this).
    pub fn encode_all_into(&self, token: &str, out: &mut Vec<SoundexCode>) {
        out.clear();
        for variant in skeleton_variants(token) {
            // Variants keep joiners; reduce to letters only.
            let letters: String = variant.chars().filter(char::is_ascii_lowercase).collect();
            if let Some(code) = self.encode_skeleton(&letters) {
                if !out.contains(&code) {
                    out.push(code);
                }
            }
        }
    }

    /// Encode a pre-computed lowercase-letter skeleton.
    fn encode_skeleton(&self, sk: &str) -> Option<SoundexCode> {
        if sk.is_empty() {
            return None;
        }
        debug_assert!(sk.bytes().all(|b| b.is_ascii_lowercase()));
        let chars: Vec<char> = sk.chars().collect();
        let prefix_len = (self.k + 1).min(chars.len());

        let mut out = String::with_capacity(prefix_len + 6);
        for &c in &chars[..prefix_len] {
            out.push(c.to_ascii_uppercase());
        }

        // Walk the whole skeleton so duplicate suppression seeds correctly
        // across the prefix boundary, but emit digits only past the prefix.
        let mut last_digit: Option<u8> = None;
        let mut digits = 0usize;
        let cap = self.max_digits.unwrap_or(usize::MAX);
        for (i, &c) in chars.iter().enumerate() {
            match soundex_digit(c) {
                Some(d) => {
                    if i >= prefix_len && last_digit != Some(d) && digits < cap {
                        out.push((b'0' + d) as char);
                        digits += 1;
                    }
                    last_digit = Some(d);
                }
                None => {
                    if is_separator(c) {
                        last_digit = None;
                    }
                    // h / w: silent, runs continue through them.
                }
            }
        }
        let pad_to = 3.min(cap);
        while digits < pad_to {
            out.push('0');
            digits += 1;
        }
        Some(SoundexCode::from_string(out))
    }
}

impl Default for CustomSoundex {
    /// The paper's default phonetic level, `k = 1`.
    fn default() -> Self {
        CustomSoundex::new(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code(k: usize, s: &str) -> String {
        CustomSoundex::new(k).encode(s).unwrap().into_string()
    }

    #[test]
    fn table1_the_row() {
        // Table I: {the, thee} → TH000 at k = 1.
        assert_eq!(code(1, "the"), "TH000");
        assert_eq!(code(1, "thee"), "TH000");
    }

    #[test]
    fn table1_dirty_row() {
        // Table I: {dirty, dirrrty} → DI630 at k = 1.
        assert_eq!(code(1, "dirty"), "DI630");
        assert_eq!(code(1, "dirrrty"), "DI630");
    }

    #[test]
    fn table1_republicans_row_grouping() {
        // Table I groups {republicans, repubLIEcans, republic@@ns} under a
        // single key. (The paper prints the literal "RE4425", which is not
        // derivable from its own stated rule set; the *grouping* is the
        // tested property — see EXPERIMENTS.md.)
        let a = code(1, "republicans");
        let b = code(1, "repubLIEcans");
        let c = code(1, "republic@@ns");
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert!(a.starts_with("RE"), "k=1 keeps two literal characters: {a}");
    }

    #[test]
    fn paper_losbian_fix() {
        // §III-A: k = 1 separates losbian/lesbian, which classic conflates.
        assert_eq!(code(1, "losbian"), "LO215");
        assert_eq!(code(1, "lesbian"), "LE215");
        // At k = 0 they still collide (classic behaviour).
        assert_eq!(code(0, "losbian"), code(0, "lesbian"));
    }

    #[test]
    fn visual_substitutions_encode_identically() {
        assert_eq!(code(1, "dem0cr@ts"), code(1, "democrats"));
        assert_eq!(code(1, "republic@@ns"), code(1, "republicans"));
        assert_eq!(code(1, "p0rn"), code(1, "porn"));
        assert_eq!(code(1, "vãccine"), code(1, "vaccine"));
        // Case emphasis never changes the code.
        assert_eq!(code(1, "democRATs"), code(1, "democrats"));
    }

    #[test]
    fn hyphenation_encodes_like_the_base_word() {
        // §II-C: "mus-lim", "vac-cine", "chi-nese".
        assert_eq!(code(1, "mus-lim"), code(1, "muslim"));
        assert_eq!(code(1, "vac-cine"), code(1, "vaccine"));
        assert_eq!(code(1, "chi-nese"), code(1, "chinese"));
    }

    #[test]
    fn repeated_characters_collapse() {
        // §II-C: "porn" → "porrrrn".
        assert_eq!(code(1, "porrrrn"), code(1, "porn"));
        assert_eq!(code(1, "dirrrty"), code(1, "dirty"));
    }

    #[test]
    fn ambiguous_leet_produces_both_codes() {
        let sx = CustomSoundex::new(1);
        let all = sx.encode_all("suic1de");
        let suicide = sx.encode("suicide").unwrap();
        assert!(all.contains(&suicide), "1→i reading indexed: {all:?}");
        assert_eq!(all.len(), 2, "primary (1→l) + alternate (1→i)");
        assert_eq!(all[0], sx.encode("suic1de").unwrap(), "primary first");
        // Unambiguous token: exactly one code.
        assert_eq!(sx.encode_all("democrats").len(), 1);
    }

    #[test]
    fn k_zero_prefix_is_single_char() {
        assert_eq!(code(0, "dirty"), "D630");
        assert_eq!(code(0, "the"), "T000");
    }

    #[test]
    fn k_two_prefix_is_three_chars() {
        // The 'r' sits inside the literal prefix, so its digit is not
        // re-emitted; only 't' contributes, then zero-padding to 3 digits.
        assert_eq!(code(2, "dirty"), "DIR300");
        // Duplicate suppression must seed from inside the prefix: the
        // 'r'-run in dirrrty may not emit any 6.
        assert_eq!(code(2, "dirrrty"), "DIR300");
    }

    #[test]
    fn k_longer_than_token() {
        assert_eq!(code(1, "a"), "A000");
        assert_eq!(code(2, "ab"), "AB000");
        assert_eq!(code(5, "the"), "THE000");
    }

    #[test]
    fn no_letters_is_none() {
        let sx = CustomSoundex::new(1);
        assert_eq!(sx.encode(""), None);
        assert_eq!(sx.encode("..."), None);
        assert_eq!(sx.encode("🙂"), None);
        assert!(sx.encode_all("...").is_empty());
    }

    #[test]
    fn pure_leet_tokens_encode_via_fold() {
        // "1337" folds to "leet" → encodable despite zero letters.
        let sx = CustomSoundex::new(1);
        assert!(sx.encode("1337").is_some());
    }

    #[test]
    fn long_words_keep_full_signature_by_default() {
        let c = code(1, "internationalization");
        assert!(c.len() > 5, "untruncated digits: {c}");
    }

    #[test]
    fn max_digits_restores_truncation() {
        let sx = CustomSoundex::new(0).with_max_digits(3);
        let c = sx.encode("internationalization").unwrap();
        assert_eq!(c.as_str().len(), 1 + 3, "classic-shaped code: {c}");
    }

    #[test]
    fn max_digits_zero_is_prefix_only() {
        let sx = CustomSoundex::new(1).with_max_digits(0);
        assert_eq!(sx.encode("dirty").unwrap().as_str(), "DI");
    }

    #[test]
    fn default_is_paper_default_k1() {
        assert_eq!(CustomSoundex::default().level(), 1);
    }

    #[test]
    fn prefix_boundary_duplicate_suppression() {
        // Prefix ends in a coded consonant; an immediately following char
        // of the same group must not emit ("tt" boundary), leaving only the
        // 'c' digit plus padding.
        assert_eq!(code(1, "attic"), "AT200");
        // ...but a vowel between them resets, so the second 't' codes.
        assert_eq!(code(1, "tito"), "TI300");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Codes have an uppercase-alphabetic prefix followed by digits only.
        #[test]
        fn code_shape(s in "\\PC{0,24}", k in 0usize..=2) {
            if let Some(code) = CustomSoundex::new(k).encode(&s) {
                let c = code.as_str();
                let prefix = code.prefix();
                prop_assert!(!prefix.is_empty());
                prop_assert!(prefix.len() <= k + 1);
                prop_assert!(prefix.bytes().all(|b| b.is_ascii_uppercase()));
                prop_assert!(code.digits().bytes().all(|b| b.is_ascii_digit()));
                prop_assert_eq!(format!("{}{}", prefix, code.digits()), c);
                prop_assert!(code.digits().len() >= 3);
            }
        }

        /// Folding a token to its skeleton never changes the primary code —
        /// the customized encoder is invariant under visual substitution.
        #[test]
        fn confusable_invariance(s in "[a-z]{1,12}", k in 0usize..=2) {
            let sx = CustomSoundex::new(k);
            let base = sx.encode(&s);
            // Uppercasing is a visual no-op.
            prop_assert_eq!(sx.encode(&s.to_ascii_uppercase()), base.clone());
            // Substituting the first substitutable letter keeps the code.
            if let Some((i, c)) = s.char_indices().find(|(_, c)| {
                !cryptext_confusables::visual_variants(*c).is_empty()
            }) {
                let v = cryptext_confusables::visual_variants(c)[0];
                let mut perturbed = s.clone();
                perturbed.replace_range(i..i + 1, &v.to_string());
                let all = sx.encode_all(&perturbed);
                prop_assert!(
                    all.contains(base.as_ref().unwrap()),
                    "{} (from {}) must index under {:?}; got {:?}",
                    perturbed, s, base, all
                );
            }
        }

        /// encode_all always contains the primary encoding and never
        /// duplicates entries.
        #[test]
        fn encode_all_contains_primary(s in "\\PC{0,16}", k in 0usize..=2) {
            let sx = CustomSoundex::new(k);
            let all = sx.encode_all(&s);
            match sx.encode(&s) {
                Some(primary) => {
                    prop_assert_eq!(all.first(), Some(&primary));
                    let set: std::collections::HashSet<_> = all.iter().collect();
                    prop_assert_eq!(set.len(), all.len(), "no duplicates");
                }
                None => prop_assert!(all.is_empty()),
            }
        }

        /// Raising k only refines buckets: tokens sharing a (k+1)-code also
        /// share their k-code prefix relationship — i.e. equal codes at
        /// k+1 imply equal codes at k.
        #[test]
        fn higher_k_refines(a in "[a-z]{1,10}", b in "[a-z]{1,10}", k in 0usize..=1) {
            let hi = CustomSoundex::new(k + 1);
            let lo = CustomSoundex::new(k);
            if hi.encode(&a) == hi.encode(&b) {
                prop_assert_eq!(lo.encode(&a), lo.encode(&b));
            }
        }
    }
}
