//! # cryptext-lm
//!
//! Word n-gram language model — CrypText's substitute for the BERT masked
//! language model used in the paper's Normalization function (§III-C).
//!
//! The paper ranks candidate corrections of a perturbed token by a
//! *coherency score*: "how likely w\* appears in the immediate context of
//! xᵢ". That only requires a **relative** ordering of candidate words given
//! a small context window, which an interpolated trigram model trained on
//! the clean corpus provides — deterministically, offline, and fast enough
//! to sit on the normalization hot path.
//!
//! The model:
//!
//! * interpolated maximum-likelihood trigram/bigram/unigram estimates with
//!   a uniform-vocabulary floor (Jelinek–Mercer smoothing),
//! * sentence boundary markers so leading/trailing context is meaningful,
//! * [`NgramLm::coherency`] — the masked-position score: the sum of the log
//!   probabilities of every trigram window that covers the masked slot,
//!   mirroring how a masked LM scores a fill-in.

#![warn(missing_docs)]

use cryptext_common::hash::FxHashMap;
use cryptext_common::{Interner, Symbol};

/// Sentinel for sentence start (never a real token).
const BOS: &str = "<s>";
/// Sentinel for sentence end.
const EOS: &str = "</s>";

/// Interpolation weights for trigram/bigram/unigram/uniform components.
/// Must sum to 1.
#[derive(Debug, Clone, Copy)]
pub struct Interpolation {
    /// Trigram ML weight.
    pub l3: f64,
    /// Bigram ML weight.
    pub l2: f64,
    /// Unigram ML weight.
    pub l1: f64,
    /// Uniform 1/V floor weight.
    pub l0: f64,
}

impl Default for Interpolation {
    fn default() -> Self {
        // Tuned for tiny corpora: heavy unigram/bigram mass, small uniform
        // floor so unseen words are penalized but not -inf.
        Interpolation {
            l3: 0.5,
            l2: 0.3,
            l1: 0.15,
            l0: 0.05,
        }
    }
}

/// Accumulates counts; call [`LmBuilder::build`] to freeze into an
/// [`NgramLm`].
#[derive(Default)]
pub struct LmBuilder {
    interner: Interner,
    unigrams: FxHashMap<Symbol, u64>,
    bigrams: FxHashMap<(Symbol, Symbol), u64>,
    trigrams: FxHashMap<(Symbol, Symbol, Symbol), u64>,
    total_unigrams: u64,
    sentences: u64,
}

impl LmBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one sentence (already split into word tokens). Tokens are
    /// lowercased; boundary markers are added internally.
    pub fn train_sentence<S: AsRef<str>>(&mut self, tokens: &[S]) {
        if tokens.is_empty() {
            return;
        }
        self.sentences += 1;
        let mut syms = Vec::with_capacity(tokens.len() + 4);
        let bos = self.interner.get_or_intern(BOS);
        let eos = self.interner.get_or_intern(EOS);
        syms.push(bos);
        syms.push(bos);
        for t in tokens {
            let lower = t.as_ref().to_ascii_lowercase();
            syms.push(self.interner.get_or_intern(&lower));
        }
        syms.push(eos);
        syms.push(eos);

        // Unigrams over real tokens + one EOS (standard convention).
        for &s in &syms[2..syms.len() - 1] {
            *self.unigrams.entry(s).or_insert(0) += 1;
            self.total_unigrams += 1;
        }
        for w in syms.windows(2) {
            *self.bigrams.entry((w[0], w[1])).or_insert(0) += 1;
        }
        for w in syms.windows(3) {
            *self.trigrams.entry((w[0], w[1], w[2])).or_insert(0) += 1;
        }
    }

    /// Tokenize `text` with the social-media tokenizer and count every
    /// word token as one sentence per line.
    pub fn train_text(&mut self, text: &str) {
        for line in text.lines() {
            let words = cryptext_tokenizer::words(line);
            self.train_sentence(&words);
        }
    }

    /// Freeze into an immutable model with the given interpolation.
    pub fn build(self, weights: Interpolation) -> NgramLm {
        let vocab_size = self.unigrams.len().max(1);
        NgramLm {
            interner: self.interner,
            unigrams: self.unigrams,
            bigrams: self.bigrams,
            trigrams: self.trigrams,
            total_unigrams: self.total_unigrams.max(1),
            vocab_size,
            weights,
            sentences: self.sentences,
        }
    }
}

/// An immutable interpolated trigram language model.
pub struct NgramLm {
    interner: Interner,
    unigrams: FxHashMap<Symbol, u64>,
    bigrams: FxHashMap<(Symbol, Symbol), u64>,
    trigrams: FxHashMap<(Symbol, Symbol, Symbol), u64>,
    total_unigrams: u64,
    vocab_size: usize,
    weights: Interpolation,
    sentences: u64,
}

impl NgramLm {
    /// Train from an iterator of sentences with default interpolation.
    pub fn train<'a>(sentences: impl IntoIterator<Item = &'a str>) -> Self {
        let mut b = LmBuilder::new();
        for s in sentences {
            let words = cryptext_tokenizer::words(s);
            b.train_sentence(&words);
        }
        b.build(Interpolation::default())
    }

    /// Vocabulary size (distinct trained tokens incl. EOS).
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// Number of training sentences.
    pub fn sentences(&self) -> u64 {
        self.sentences
    }

    /// Is `word` in the trained vocabulary?
    pub fn knows(&self, word: &str) -> bool {
        self.sym(word)
            .is_some_and(|s| self.unigrams.contains_key(&s))
    }

    fn sym(&self, word: &str) -> Option<Symbol> {
        self.interner.get(&word.to_ascii_lowercase())
    }

    fn unigram_count(&self, s: Option<Symbol>) -> u64 {
        s.and_then(|s| self.unigrams.get(&s)).copied().unwrap_or(0)
    }

    fn bigram_count(&self, a: Option<Symbol>, b: Option<Symbol>) -> u64 {
        match (a, b) {
            (Some(a), Some(b)) => self.bigrams.get(&(a, b)).copied().unwrap_or(0),
            _ => 0,
        }
    }

    fn trigram_count(&self, a: Option<Symbol>, b: Option<Symbol>, c: Option<Symbol>) -> u64 {
        match (a, b, c) {
            (Some(a), Some(b), Some(c)) => self.trigrams.get(&(a, b, c)).copied().unwrap_or(0),
            _ => 0,
        }
    }

    /// Context-history count for bigram denominator: occurrences of `a` as
    /// a history token (= its unigram count, with BOS counted via bigrams).
    fn history_count(&self, a: Option<Symbol>) -> u64 {
        match a {
            None => 0,
            Some(s) => {
                // BOS never appears as a unigram; derive from bigram mass.
                if self.unigrams.contains_key(&s) {
                    self.unigrams[&s]
                } else {
                    self.bigrams
                        .iter()
                        .filter(|((x, _), _)| *x == s)
                        .map(|(_, c)| *c)
                        .sum()
                }
            }
        }
    }

    /// Interpolated `P(w | a, b)` where `a, b` are the two history tokens
    /// (use `"<s>"` markers for sentence starts). Always > 0.
    pub fn prob(&self, w: &str, a: &str, b: &str) -> f64 {
        let sw = self.sym(w);
        let sa = self.sym(a);
        let sb = self.sym(b);

        let tri_num = self.trigram_count(sa, sb, sw);
        let tri_den = self.bigram_count(sa, sb);
        let p3 = if tri_den > 0 {
            tri_num as f64 / tri_den as f64
        } else {
            0.0
        };

        let bi_num = self.bigram_count(sb, sw);
        let bi_den = self.history_count(sb);
        let p2 = if bi_den > 0 {
            bi_num as f64 / bi_den as f64
        } else {
            0.0
        };

        let p1 = self.unigram_count(sw) as f64 / self.total_unigrams as f64;
        let p0 = 1.0 / (self.vocab_size as f64 + 1.0);

        let w = &self.weights;
        (w.l3 * p3 + w.l2 * p2 + w.l1 * p1 + w.l0 * p0).max(f64::MIN_POSITIVE)
    }

    /// `ln P(w | a, b)`.
    pub fn log_prob(&self, w: &str, a: &str, b: &str) -> f64 {
        self.prob(w, a, b).ln()
    }

    /// Masked coherency score for placing `candidate` in a slot with the
    /// given left and right context (nearest-first NOT required: pass
    /// contexts in natural reading order; missing context is padded with
    /// boundary markers).
    ///
    /// The score sums the log probability of each trigram window covering
    /// the masked slot:
    /// `ln P(c | l₋₂ l₋₁) + ln P(r₊₁ | l₋₁ c) + ln P(r₊₂ | c r₊₁)`.
    /// Higher is more coherent. Comparable **only** across candidates for
    /// the same slot.
    pub fn coherency(&self, candidate: &str, left: &[&str], right: &[&str]) -> f64 {
        let l1 = left.last().copied().unwrap_or(BOS);
        let l2 = if left.len() >= 2 {
            left[left.len() - 2]
        } else {
            BOS
        };
        let r1 = right.first().copied().unwrap_or(EOS);
        let r2 = if right.len() >= 2 { right[1] } else { EOS };

        self.log_prob(candidate, l2, l1)
            + self.log_prob(r1, l1, candidate)
            + self.log_prob(r2, candidate, r1)
    }

    /// `ln P(w)` under the unigram distribution (with floor).
    pub fn unigram_log_prob(&self, w: &str) -> f64 {
        let p = self.unigram_count(self.sym(w)) as f64 / self.total_unigrams as f64;
        let floor = self.weights.l0 / (self.vocab_size as f64 + 1.0);
        (p.max(floor)).ln()
    }

    /// Perplexity of a token sequence under the model (boundary markers
    /// added). Lower = better fit.
    pub fn perplexity<S: AsRef<str>>(&self, tokens: &[S]) -> f64 {
        if tokens.is_empty() {
            return f64::INFINITY;
        }
        let mut hist = (BOS.to_string(), BOS.to_string());
        let mut log_sum = 0.0;
        let mut n = 0usize;
        for t in tokens {
            let w = t.as_ref().to_ascii_lowercase();
            log_sum += self.log_prob(&w, &hist.0, &hist.1);
            n += 1;
            hist = (hist.1, w);
        }
        log_sum += self.log_prob(EOS, &hist.0, &hist.1);
        n += 1;
        (-log_sum / n as f64).exp()
    }
}

impl std::fmt::Debug for NgramLm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NgramLm")
            .field("vocab", &self.vocab_size)
            .field("unigrams", &self.unigrams.len())
            .field("bigrams", &self.bigrams.len())
            .field("trigrams", &self.trigrams.len())
            .field("sentences", &self.sentences)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn political_lm() -> NgramLm {
        NgramLm::train([
            "biden belongs to the democrats",
            "trump belongs to the republicans",
            "the democrats proposed the bill",
            "the republicans blocked the bill",
            "the vaccine mandate was announced",
            "people discussed the vaccine mandate online",
            "the democrats and the republicans argued",
        ])
    }

    #[test]
    fn knows_vocabulary_case_insensitively() {
        let lm = political_lm();
        assert!(lm.knows("democrats"));
        assert!(lm.knows("DEMOCRATS"));
        assert!(!lm.knows("demokrats"));
        assert!(lm.vocab_size() > 10);
        assert_eq!(lm.sentences(), 7);
    }

    #[test]
    fn probabilities_are_positive_and_at_most_one() {
        let lm = political_lm();
        for w in ["democrats", "unknownzzz", "the", "bill"] {
            let p = lm.prob(w, "to", "the");
            assert!(p > 0.0, "{w}: {p}");
            assert!(p <= 1.0, "{w}: {p}");
        }
    }

    #[test]
    fn seen_trigram_beats_unseen() {
        let lm = political_lm();
        let seen = lm.prob("democrats", "to", "the");
        let unseen = lm.prob("mandate", "to", "the");
        assert!(seen > unseen, "{seen} vs {unseen}");
    }

    #[test]
    fn coherency_prefers_contextual_fit() {
        let lm = political_lm();
        // Slot: "biden belongs to the ____"
        let left = ["belongs", "to", "the"];
        let demo = lm.coherency("democrats", &left, &[]);
        let mandate = lm.coherency("mandate", &left, &[]);
        let unknown = lm.coherency("zzzz", &left, &[]);
        assert!(demo > mandate, "{demo} vs {mandate}");
        assert!(mandate > unknown, "{mandate} vs {unknown}");
    }

    #[test]
    fn coherency_uses_right_context() {
        let lm = political_lm();
        // Slot: "the ____ mandate was announced"
        let vaccine = lm.coherency("vaccine", &["the"], &["mandate", "was"]);
        let bill = lm.coherency("bill", &["the"], &["mandate", "was"]);
        assert!(vaccine > bill, "{vaccine} vs {bill}");
    }

    #[test]
    fn coherency_handles_empty_context() {
        let lm = political_lm();
        let a = lm.coherency("the", &[], &[]);
        let b = lm.coherency("zzzz", &[], &[]);
        assert!(a.is_finite() && b.is_finite());
        assert!(a > b, "frequent word beats unknown even bare");
    }

    #[test]
    fn perplexity_lower_on_training_like_text() {
        let lm = political_lm();
        let fit = lm.perplexity(&["the", "democrats", "proposed", "the", "bill"]);
        let misfit = lm.perplexity(&["bill", "the", "proposed", "democrats", "the"]);
        assert!(fit < misfit, "{fit} vs {misfit}");
        let unknown = lm.perplexity(&["qqq", "www", "eee"]);
        assert!(misfit < unknown);
    }

    #[test]
    fn perplexity_of_empty_is_infinite() {
        let lm = political_lm();
        assert!(lm.perplexity::<&str>(&[]).is_infinite());
    }

    #[test]
    fn empty_model_does_not_panic() {
        let lm = LmBuilder::new().build(Interpolation::default());
        assert!(lm.prob("x", "a", "b") > 0.0);
        assert!(lm.coherency("x", &["a"], &["b"]).is_finite());
        assert_eq!(lm.vocab_size(), 1, "clamped to avoid div-by-zero");
    }

    #[test]
    fn builder_skips_empty_sentences() {
        let mut b = LmBuilder::new();
        b.train_sentence::<&str>(&[]);
        let lm = b.build(Interpolation::default());
        assert_eq!(lm.sentences(), 0);
    }

    #[test]
    fn train_text_splits_lines() {
        let mut b = LmBuilder::new();
        b.train_text("the cat sat\nthe dog ran");
        let lm = b.build(Interpolation::default());
        assert_eq!(lm.sentences(), 2);
        assert!(lm.knows("cat"));
        assert!(lm.knows("dog"));
    }

    #[test]
    fn unigram_log_prob_orders_by_frequency() {
        let lm = political_lm();
        assert!(lm.unigram_log_prob("the") > lm.unigram_log_prob("biden"));
        assert!(lm.unigram_log_prob("biden") > lm.unigram_log_prob("neverseen"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The conditional distribution over the full vocabulary (plus one
        /// unseen word) never sums above 1 + l0 (the uniform floor leaks at
        /// most l0 of extra mass to out-of-vocabulary words).
        #[test]
        fn conditional_mass_bounded(seed_sentences in proptest::collection::vec(
            proptest::collection::vec("[a-c]", 1..5), 1..6)
        ) {
            let mut b = LmBuilder::new();
            for s in &seed_sentences {
                b.train_sentence(s);
            }
            let lm = b.build(Interpolation::default());
            let vocab = ["a", "b", "c", "</s>"];
            let mass: f64 = vocab.iter().map(|w| lm.prob(w, "a", "b")).sum();
            prop_assert!(mass <= 1.0 + 0.05 + 1e-9, "mass {mass}");
        }

        /// Probabilities are always finite and positive regardless of input.
        #[test]
        fn prob_total(w in "\\PC{0,8}", a in "\\PC{0,8}", b in "\\PC{0,8}") {
            let lm = NgramLm::train(["hello world", "world hello again"]);
            let p = lm.prob(&w, &a, &b);
            prop_assert!(p.is_finite() && p > 0.0);
            prop_assert!(lm.coherency(&w, &[&a], &[&b]).is_finite());
        }
    }
}
