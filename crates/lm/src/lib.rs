//! # cryptext-lm
//!
//! Word n-gram language model — CrypText's substitute for the BERT masked
//! language model used in the paper's Normalization function (§III-C).
//!
//! The paper ranks candidate corrections of a perturbed token by a
//! *coherency score*: "how likely w\* appears in the immediate context of
//! xᵢ". That only requires a **relative** ordering of candidate words given
//! a small context window, which an interpolated trigram model trained on
//! the clean corpus provides — deterministically, offline, and fast enough
//! to sit on the normalization hot path.
//!
//! The model:
//!
//! * interpolated maximum-likelihood trigram/bigram/unigram estimates with
//!   a uniform-vocabulary floor (Jelinek–Mercer smoothing),
//! * sentence boundary markers so leading/trailing context is meaningful,
//! * [`NgramLm::coherency`] — the masked-position score: the sum of the log
//!   probabilities of every trigram window that covers the masked slot,
//!   mirroring how a masked LM scores a fill-in,
//! * [`NgramLm::coherency_cached`] — the Normalization hot-path variant: a
//!   caller-held, generation-marked [`CoherencyCache`] memoizes scores per
//!   resolved `(context, candidate)` symbol window, so candidates repeated
//!   across the tokens of one text never re-probe the n-gram tables.
//!
//! Scores depend on words only through their interned [`Symbol`]s (unknown
//! words all resolve to the same "no symbol" state), which is what makes
//! symbol-window memoization exact rather than approximate.

#![warn(missing_docs)]

use cryptext_common::hash::FxHashMap;
use cryptext_common::{Interner, Symbol};

/// Sentinel for sentence start (never a real token).
const BOS: &str = "<s>";
/// Sentinel for sentence end.
const EOS: &str = "</s>";

/// Interpolation weights for trigram/bigram/unigram/uniform components.
/// Must sum to 1.
#[derive(Debug, Clone, Copy)]
pub struct Interpolation {
    /// Trigram ML weight.
    pub l3: f64,
    /// Bigram ML weight.
    pub l2: f64,
    /// Unigram ML weight.
    pub l1: f64,
    /// Uniform 1/V floor weight.
    pub l0: f64,
}

impl Default for Interpolation {
    fn default() -> Self {
        // Tuned for tiny corpora: heavy unigram/bigram mass, small uniform
        // floor so unseen words are penalized but not -inf.
        Interpolation {
            l3: 0.5,
            l2: 0.3,
            l1: 0.15,
            l0: 0.05,
        }
    }
}

/// Accumulates counts; call [`LmBuilder::build`] to freeze into an
/// [`NgramLm`].
#[derive(Default)]
pub struct LmBuilder {
    interner: Interner,
    unigrams: FxHashMap<Symbol, u64>,
    bigrams: FxHashMap<(Symbol, Symbol), u64>,
    trigrams: FxHashMap<(Symbol, Symbol, Symbol), u64>,
    total_unigrams: u64,
    sentences: u64,
}

impl LmBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one sentence (already split into word tokens). Tokens are
    /// lowercased; boundary markers are added internally.
    pub fn train_sentence<S: AsRef<str>>(&mut self, tokens: &[S]) {
        self.train_words(tokens.iter().map(|t| t.as_ref()))
    }

    /// The borrowed-token training core: interns every word straight from
    /// `&str` slices, allocating only when a token actually contains an
    /// ASCII uppercase letter (the fold is then unavoidable). Empty
    /// sentences are not counted.
    fn train_words<'x>(&mut self, tokens: impl Iterator<Item = &'x str>) {
        let bos = self.interner.get_or_intern(BOS);
        let eos = self.interner.get_or_intern(EOS);
        let mut syms = Vec::with_capacity(tokens.size_hint().0 + 4);
        syms.push(bos);
        syms.push(bos);
        for t in tokens {
            // Already-lowercase tokens (the common case: span-tokenized
            // clean sentences) intern without a per-token String.
            let sym = if t.bytes().any(|b| b.is_ascii_uppercase()) {
                self.interner.get_or_intern(&t.to_ascii_lowercase())
            } else {
                self.interner.get_or_intern(t)
            };
            syms.push(sym);
        }
        if syms.len() == 2 {
            return; // no word tokens — not a sentence
        }
        self.sentences += 1;
        syms.push(eos);
        syms.push(eos);

        // Unigrams over real tokens + one EOS (standard convention).
        for &s in &syms[2..syms.len() - 1] {
            *self.unigrams.entry(s).or_insert(0) += 1;
            self.total_unigrams += 1;
        }
        for w in syms.windows(2) {
            *self.bigrams.entry((w[0], w[1])).or_insert(0) += 1;
        }
        for w in syms.windows(3) {
            *self.trigrams.entry((w[0], w[1], w[2])).or_insert(0) += 1;
        }
    }

    /// Tokenize `text` with the social-media tokenizer and count every
    /// word token as one sentence per line. Runs on the zero-copy
    /// [`cryptext_tokenizer::word_spans`] path: token text is borrowed
    /// from `text` all the way into the interner.
    pub fn train_text(&mut self, text: &str) {
        for line in text.lines() {
            self.train_words(cryptext_tokenizer::word_spans(line));
        }
    }

    /// Freeze into an immutable model with the given interpolation.
    pub fn build(self, weights: Interpolation) -> NgramLm {
        let vocab_size = self.unigrams.len().max(1);
        // Content digest: XOR-accumulated per-unigram hashes (order
        // independent — FxHashMap iteration order is arbitrary) mixed with
        // the model's scalar shape and the interpolation weights. Two
        // replicas trained on the same corpus with the same weights agree;
        // any retrain that changes a count diverges. Cache namespaces key
        // on this so results scored by different models never alias.
        let mut fingerprint: u64 = 0;
        for (&sym, &count) in &self.unigrams {
            let word_hash = self
                .interner
                .with_resolved(sym, cryptext_common::hash::fx_hash_str)
                .unwrap_or(0);
            let mut h = cryptext_common::FxHasher::default();
            std::hash::Hasher::write_u64(&mut h, word_hash);
            std::hash::Hasher::write_u64(&mut h, count);
            fingerprint ^= std::hash::Hasher::finish(&h);
        }
        let mut h = cryptext_common::FxHasher::default();
        std::hash::Hasher::write_u64(&mut h, fingerprint);
        std::hash::Hasher::write_u64(&mut h, vocab_size as u64);
        std::hash::Hasher::write_u64(&mut h, self.total_unigrams);
        std::hash::Hasher::write_u64(&mut h, self.sentences);
        std::hash::Hasher::write_u64(&mut h, self.bigrams.len() as u64);
        std::hash::Hasher::write_u64(&mut h, self.trigrams.len() as u64);
        for w in [weights.l3, weights.l2, weights.l1, weights.l0] {
            std::hash::Hasher::write_u64(&mut h, w.to_bits());
        }
        let fingerprint = std::hash::Hasher::finish(&h);
        // History counts for symbols that never occur as unigrams (BOS in
        // practice) are a sum over every bigram starting with the symbol.
        // BOS is the history of *every* sentence-initial slot, so that sum
        // sat directly on the Normalization hot path — precompute it once.
        let mut history_fallback: FxHashMap<Symbol, u64> = FxHashMap::default();
        for (&(a, _), &c) in &self.bigrams {
            if !self.unigrams.contains_key(&a) {
                *history_fallback.entry(a).or_insert(0) += c;
            }
        }
        NgramLm {
            interner: self.interner,
            unigrams: self.unigrams,
            bigrams: self.bigrams,
            trigrams: self.trigrams,
            history_fallback,
            total_unigrams: self.total_unigrams.max(1),
            vocab_size,
            weights,
            sentences: self.sentences,
            fingerprint,
        }
    }
}

/// An immutable interpolated trigram language model.
pub struct NgramLm {
    interner: Interner,
    unigrams: FxHashMap<Symbol, u64>,
    bigrams: FxHashMap<(Symbol, Symbol), u64>,
    trigrams: FxHashMap<(Symbol, Symbol, Symbol), u64>,
    /// Precomputed history counts for symbols absent from `unigrams`
    /// (boundary markers); see [`LmBuilder::build`].
    history_fallback: FxHashMap<Symbol, u64>,
    total_unigrams: u64,
    vocab_size: usize,
    weights: Interpolation,
    sentences: u64,
    /// Build-time content digest; see [`LmBuilder::build`].
    fingerprint: u64,
}

impl NgramLm {
    /// Train from an iterator of sentences with default interpolation.
    /// Each sentence tokenizes through the zero-copy span path and interns
    /// directly from the borrowed text.
    pub fn train<'a>(sentences: impl IntoIterator<Item = &'a str>) -> Self {
        let mut b = LmBuilder::new();
        for s in sentences {
            b.train_words(cryptext_tokenizer::word_spans(s));
        }
        b.build(Interpolation::default())
    }

    /// Vocabulary size (distinct trained tokens incl. EOS).
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// Number of training sentences.
    pub fn sentences(&self) -> u64 {
        self.sentences
    }

    /// A 64-bit content digest of the trained model (counts + weights):
    /// equal for identically-trained replicas, different after any
    /// retrain that changes a count. Cache namespaces include it so
    /// memoized scores never cross model identities.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Is `word` in the trained vocabulary?
    pub fn knows(&self, word: &str) -> bool {
        self.sym(word)
            .is_some_and(|s| self.unigrams.contains_key(&s))
    }

    fn sym(&self, word: &str) -> Option<Symbol> {
        // Candidate words on the Normalization hot path arrive already
        // lowercased; skip the per-call String allocation for them.
        if word.bytes().any(|b| b.is_ascii_uppercase()) {
            self.interner.get(&word.to_ascii_lowercase())
        } else {
            self.interner.get(word)
        }
    }

    fn unigram_count(&self, s: Option<Symbol>) -> u64 {
        s.and_then(|s| self.unigrams.get(&s)).copied().unwrap_or(0)
    }

    fn bigram_count(&self, a: Option<Symbol>, b: Option<Symbol>) -> u64 {
        match (a, b) {
            (Some(a), Some(b)) => self.bigrams.get(&(a, b)).copied().unwrap_or(0),
            _ => 0,
        }
    }

    fn trigram_count(&self, a: Option<Symbol>, b: Option<Symbol>, c: Option<Symbol>) -> u64 {
        match (a, b, c) {
            (Some(a), Some(b), Some(c)) => self.trigrams.get(&(a, b, c)).copied().unwrap_or(0),
            _ => 0,
        }
    }

    /// Context-history count for bigram denominator: occurrences of `a` as
    /// a history token (= its unigram count, with BOS counted via bigram
    /// mass precomputed at build time).
    fn history_count(&self, a: Option<Symbol>) -> u64 {
        match a {
            None => 0,
            Some(s) => {
                // BOS never appears as a unigram; its bigram-mass sum was
                // folded into `history_fallback` by the builder.
                if let Some(&c) = self.unigrams.get(&s) {
                    c
                } else {
                    self.history_fallback.get(&s).copied().unwrap_or(0)
                }
            }
        }
    }

    /// Interpolated `P(w | a, b)` where `a, b` are the two history tokens
    /// (use `"<s>"` markers for sentence starts). Always > 0.
    pub fn prob(&self, w: &str, a: &str, b: &str) -> f64 {
        self.prob_syms(self.sym(w), self.sym(a), self.sym(b))
    }

    /// [`NgramLm::prob`] over pre-resolved symbols — the form every scoring
    /// path bottoms out in. Symbols fully determine the probability, so
    /// callers that resolve a window once (coherency, the memo cache) skip
    /// all repeated interner probes.
    fn prob_syms(&self, sw: Option<Symbol>, sa: Option<Symbol>, sb: Option<Symbol>) -> f64 {
        let tri_num = self.trigram_count(sa, sb, sw);
        let tri_den = self.bigram_count(sa, sb);
        let p3 = if tri_den > 0 {
            tri_num as f64 / tri_den as f64
        } else {
            0.0
        };

        let bi_num = self.bigram_count(sb, sw);
        let bi_den = self.history_count(sb);
        let p2 = if bi_den > 0 {
            bi_num as f64 / bi_den as f64
        } else {
            0.0
        };

        let p1 = self.unigram_count(sw) as f64 / self.total_unigrams as f64;
        let p0 = 1.0 / (self.vocab_size as f64 + 1.0);

        let w = &self.weights;
        (w.l3 * p3 + w.l2 * p2 + w.l1 * p1 + w.l0 * p0).max(f64::MIN_POSITIVE)
    }

    /// `ln P(w | a, b)`.
    pub fn log_prob(&self, w: &str, a: &str, b: &str) -> f64 {
        self.prob(w, a, b).ln()
    }

    #[inline]
    fn log_prob_syms(&self, w: Option<Symbol>, a: Option<Symbol>, b: Option<Symbol>) -> f64 {
        self.prob_syms(w, a, b).ln()
    }

    /// Resolve the coherency window — candidate plus the two context words
    /// on each side, padded with boundary markers — to symbols, once.
    fn resolve_window(
        &self,
        candidate: &str,
        left: &[&str],
        right: &[&str],
    ) -> [Option<Symbol>; 5] {
        let l1 = left.last().copied().unwrap_or(BOS);
        let l2 = if left.len() >= 2 {
            left[left.len() - 2]
        } else {
            BOS
        };
        let r1 = right.first().copied().unwrap_or(EOS);
        let r2 = if right.len() >= 2 { right[1] } else { EOS };
        [
            self.sym(candidate),
            self.sym(l2),
            self.sym(l1),
            self.sym(r1),
            self.sym(r2),
        ]
    }

    /// The coherency sum over a pre-resolved window (see
    /// [`NgramLm::coherency`] for the formula).
    fn coherency_syms(&self, [c, l2, l1, r1, r2]: [Option<Symbol>; 5]) -> f64 {
        self.log_prob_syms(c, l2, l1)
            + self.log_prob_syms(r1, l1, c)
            + self.log_prob_syms(r2, c, r1)
    }

    /// Masked coherency score for placing `candidate` in a slot with the
    /// given left and right context (nearest-first NOT required: pass
    /// contexts in natural reading order; missing context is padded with
    /// boundary markers).
    ///
    /// The score sums the log probability of each trigram window covering
    /// the masked slot:
    /// `ln P(c | l₋₂ l₋₁) + ln P(r₊₁ | l₋₁ c) + ln P(r₊₂ | c r₊₁)`.
    /// Higher is more coherent. Comparable **only** across candidates for
    /// the same slot.
    pub fn coherency(&self, candidate: &str, left: &[&str], right: &[&str]) -> f64 {
        self.coherency_syms(self.resolve_window(candidate, left, right))
    }

    /// [`NgramLm::coherency`] memoized through a caller-held
    /// [`CoherencyCache`]. Returns bit-identical scores: the cache key is
    /// the resolved symbol window, which fully determines the score (all
    /// out-of-vocabulary words share one "no symbol" state). Normalization
    /// holds one cache per text, so a candidate that recurs across tokens
    /// (or a whole context window that recurs across candidates) is scored
    /// once.
    pub fn coherency_cached(
        &self,
        candidate: &str,
        left: &[&str],
        right: &[&str],
        cache: &mut CoherencyCache,
    ) -> f64 {
        let window = self.resolve_window(candidate, left, right);
        let key = CoherencyCache::key_of(window);
        if let Some(v) = cache.get(key) {
            return v;
        }
        let v = self.coherency_syms(window);
        cache.put(key, v);
        v
    }

    /// `ln P(w)` under the unigram distribution (with floor).
    pub fn unigram_log_prob(&self, w: &str) -> f64 {
        let p = self.unigram_count(self.sym(w)) as f64 / self.total_unigrams as f64;
        let floor = self.weights.l0 / (self.vocab_size as f64 + 1.0);
        (p.max(floor)).ln()
    }

    /// Perplexity of a token sequence under the model (boundary markers
    /// added). Lower = better fit.
    pub fn perplexity<S: AsRef<str>>(&self, tokens: &[S]) -> f64 {
        if tokens.is_empty() {
            return f64::INFINITY;
        }
        let mut hist = (BOS.to_string(), BOS.to_string());
        let mut log_sum = 0.0;
        let mut n = 0usize;
        for t in tokens {
            let w = t.as_ref().to_ascii_lowercase();
            log_sum += self.log_prob(&w, &hist.0, &hist.1);
            n += 1;
            hist = (hist.1, w);
        }
        log_sum += self.log_prob(EOS, &hist.0, &hist.1);
        n += 1;
        (-log_sum / n as f64).exp()
    }
}

/// Number of slots in a [`CoherencyCache`] (power of two). A text rarely
/// produces more than a few hundred distinct `(context, candidate)`
/// windows, so 512 slots with a short probe window keeps the hit rate high
/// at 12 KiB per thread.
const COHERENCY_CACHE_SLOTS: usize = 512;
/// Linear-probe window before giving up on a slot (missing the cache is
/// always safe — the score is recomputed).
const COHERENCY_CACHE_PROBES: usize = 8;

#[derive(Clone, Copy)]
struct CoherencySlot {
    key: [u32; 5],
    gen: u32,
    val: f64,
}

/// Generation-marked memo table for [`NgramLm::coherency_cached`].
///
/// Keys are resolved symbol windows (candidate + four context slots), so a
/// hit returns the exact `f64` the uncached path would compute. Starting a
/// new text is one [`CoherencyCache::begin`] generation bump — no clearing,
/// mirroring the Look Up engine's visited-set scratch. Stale entries from
/// earlier generations are simply treated as empty slots.
///
/// Reuse one instance per thread (or per bulk request); storage is
/// allocated lazily on first use.
#[derive(Default)]
pub struct CoherencyCache {
    slots: Vec<CoherencySlot>,
    gen: u32,
}

impl CoherencyCache {
    /// Fresh cache (allocates lazily on first probe).
    pub fn new() -> Self {
        CoherencyCache::default()
    }

    /// Start a new generation (typically: a new text). O(1) — entries from
    /// earlier generations become invisible without being cleared.
    pub fn begin(&mut self) {
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            // Generation counter wrapped: old marks could alias. Reset the
            // slot generations once per 2^32 texts.
            for slot in &mut self.slots {
                slot.gen = 0;
            }
            self.gen = 1;
        }
    }

    /// Pack a resolved window into the cache key; `u32::MAX` encodes the
    /// shared out-of-vocabulary state (symbols are dense vector indices, so
    /// the sentinel cannot collide with a real symbol).
    fn key_of(window: [Option<Symbol>; 5]) -> [u32; 5] {
        window.map(|s| s.map_or(u32::MAX, |s| s.0))
    }

    #[inline]
    fn slot_index(key: [u32; 5]) -> usize {
        // FxHash-style multiply-mix over the five words.
        let mut h: u64 = 0x51_7c_c1_b7_27_22_0a_95;
        for w in key {
            h = (h.rotate_left(5) ^ u64::from(w)).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
        }
        (h >> 32) as usize & (COHERENCY_CACHE_SLOTS - 1)
    }

    fn get(&mut self, key: [u32; 5]) -> Option<f64> {
        if self.gen == 0 {
            self.begin(); // used without an explicit begin(): lazily start
        }
        if self.slots.is_empty() {
            self.slots = vec![
                CoherencySlot {
                    key: [0; 5],
                    gen: 0,
                    val: 0.0,
                };
                COHERENCY_CACHE_SLOTS
            ];
        }
        let start = Self::slot_index(key);
        for i in 0..COHERENCY_CACHE_PROBES {
            let slot = &self.slots[(start + i) & (COHERENCY_CACHE_SLOTS - 1)];
            if slot.gen == self.gen && slot.key == key {
                return Some(slot.val);
            }
        }
        None
    }

    fn put(&mut self, key: [u32; 5], val: f64) {
        debug_assert!(!self.slots.is_empty(), "get() runs first and allocates");
        let start = Self::slot_index(key);
        let mut victim = start & (COHERENCY_CACHE_SLOTS - 1);
        for i in 0..COHERENCY_CACHE_PROBES {
            let idx = (start + i) & (COHERENCY_CACHE_SLOTS - 1);
            if self.slots[idx].gen != self.gen {
                victim = idx;
                break;
            }
        }
        // All probes current-generation: overwrite the home slot. Losing a
        // memoized entry only costs a recompute.
        self.slots[victim] = CoherencySlot {
            key,
            gen: self.gen,
            val,
        };
    }
}

impl std::fmt::Debug for CoherencyCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoherencyCache")
            .field("slots", &self.slots.len())
            .field("gen", &self.gen)
            .finish()
    }
}

impl std::fmt::Debug for NgramLm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NgramLm")
            .field("vocab", &self.vocab_size)
            .field("unigrams", &self.unigrams.len())
            .field("bigrams", &self.bigrams.len())
            .field("trigrams", &self.trigrams.len())
            .field("sentences", &self.sentences)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn political_lm() -> NgramLm {
        NgramLm::train([
            "biden belongs to the democrats",
            "trump belongs to the republicans",
            "the democrats proposed the bill",
            "the republicans blocked the bill",
            "the vaccine mandate was announced",
            "people discussed the vaccine mandate online",
            "the democrats and the republicans argued",
        ])
    }

    #[test]
    fn knows_vocabulary_case_insensitively() {
        let lm = political_lm();
        assert!(lm.knows("democrats"));
        assert!(lm.knows("DEMOCRATS"));
        assert!(!lm.knows("demokrats"));
        assert!(lm.vocab_size() > 10);
        assert_eq!(lm.sentences(), 7);
    }

    #[test]
    fn probabilities_are_positive_and_at_most_one() {
        let lm = political_lm();
        for w in ["democrats", "unknownzzz", "the", "bill"] {
            let p = lm.prob(w, "to", "the");
            assert!(p > 0.0, "{w}: {p}");
            assert!(p <= 1.0, "{w}: {p}");
        }
    }

    #[test]
    fn seen_trigram_beats_unseen() {
        let lm = political_lm();
        let seen = lm.prob("democrats", "to", "the");
        let unseen = lm.prob("mandate", "to", "the");
        assert!(seen > unseen, "{seen} vs {unseen}");
    }

    #[test]
    fn coherency_prefers_contextual_fit() {
        let lm = political_lm();
        // Slot: "biden belongs to the ____"
        let left = ["belongs", "to", "the"];
        let demo = lm.coherency("democrats", &left, &[]);
        let mandate = lm.coherency("mandate", &left, &[]);
        let unknown = lm.coherency("zzzz", &left, &[]);
        assert!(demo > mandate, "{demo} vs {mandate}");
        assert!(mandate > unknown, "{mandate} vs {unknown}");
    }

    #[test]
    fn coherency_uses_right_context() {
        let lm = political_lm();
        // Slot: "the ____ mandate was announced"
        let vaccine = lm.coherency("vaccine", &["the"], &["mandate", "was"]);
        let bill = lm.coherency("bill", &["the"], &["mandate", "was"]);
        assert!(vaccine > bill, "{vaccine} vs {bill}");
    }

    #[test]
    fn coherency_handles_empty_context() {
        let lm = political_lm();
        let a = lm.coherency("the", &[], &[]);
        let b = lm.coherency("zzzz", &[], &[]);
        assert!(a.is_finite() && b.is_finite());
        assert!(a > b, "frequent word beats unknown even bare");
    }

    #[test]
    fn perplexity_lower_on_training_like_text() {
        let lm = political_lm();
        let fit = lm.perplexity(&["the", "democrats", "proposed", "the", "bill"]);
        let misfit = lm.perplexity(&["bill", "the", "proposed", "democrats", "the"]);
        assert!(fit < misfit, "{fit} vs {misfit}");
        let unknown = lm.perplexity(&["qqq", "www", "eee"]);
        assert!(misfit < unknown);
    }

    #[test]
    fn perplexity_of_empty_is_infinite() {
        let lm = political_lm();
        assert!(lm.perplexity::<&str>(&[]).is_infinite());
    }

    #[test]
    fn empty_model_does_not_panic() {
        let lm = LmBuilder::new().build(Interpolation::default());
        assert!(lm.prob("x", "a", "b") > 0.0);
        assert!(lm.coherency("x", &["a"], &["b"]).is_finite());
        assert_eq!(lm.vocab_size(), 1, "clamped to avoid div-by-zero");
    }

    #[test]
    fn fingerprint_is_content_derived() {
        let a = NgramLm::train(["the democrats won", "the vaccine mandate"]);
        let b = NgramLm::train(["the democrats won", "the vaccine mandate"]);
        let c = NgramLm::train(["the democrats won"]);
        assert_eq!(a.fingerprint(), b.fingerprint(), "replicas agree");
        assert_ne!(
            a.fingerprint(),
            c.fingerprint(),
            "different corpus diverges"
        );
        let reweighted = {
            let mut builder = LmBuilder::new();
            builder.train_text("the democrats won\nthe vaccine mandate");
            builder.build(Interpolation {
                l3: 0.4,
                l2: 0.4,
                l1: 0.15,
                l0: 0.05,
            })
        };
        assert_ne!(
            a.fingerprint(),
            reweighted.fingerprint(),
            "weights are part of the identity"
        );
    }

    #[test]
    fn builder_skips_empty_sentences() {
        let mut b = LmBuilder::new();
        b.train_sentence::<&str>(&[]);
        let lm = b.build(Interpolation::default());
        assert_eq!(lm.sentences(), 0);
    }

    #[test]
    fn train_text_splits_lines() {
        let mut b = LmBuilder::new();
        b.train_text("the cat sat\nthe dog ran");
        let lm = b.build(Interpolation::default());
        assert_eq!(lm.sentences(), 2);
        assert!(lm.knows("cat"));
        assert!(lm.knows("dog"));
    }

    #[test]
    fn borrowed_span_training_matches_owned_token_training() {
        // The zero-copy train_text path (conditional fold, interning from
        // borrowed text) must score bit-identically to a reference built
        // from owned, *pre-folded* token Strings. Pre-folding matters:
        // the reference side's internal conditional fold is then a no-op
        // by construction, so a bug in the skip-allocation fold on the
        // span side cannot cancel out — mixed-case inputs would diverge.
        // (Span-vs-owned tokenization equivalence is pinned separately in
        // cryptext-tokenizer's word_spans differential test.)
        let texts = [
            "the demokRATs proposed the bill",
            "check https://x.com the vacc1ne mandate!! 123",
            "@user thinking about suic1de 🙂 ok",
            "",
            "!!! 🙂 …",
            "CASE Folding MiXeD tokens",
        ];
        let mut spans = LmBuilder::new();
        let mut owned = LmBuilder::new();
        for t in texts {
            spans.train_text(t);
            for line in t.lines() {
                let lowered: Vec<String> = cryptext_tokenizer::words(line)
                    .iter()
                    .map(|w| w.to_ascii_lowercase())
                    .collect();
                owned.train_sentence(&lowered);
            }
        }
        let spans = spans.build(Interpolation::default());
        let owned = owned.build(Interpolation::default());
        assert_eq!(spans.sentences(), owned.sentences());
        assert_eq!(spans.vocab_size(), owned.vocab_size());
        // Word-less lines (punctuation/emoji only) are not sentences.
        assert_eq!(spans.sentences(), 4);
        for (word, left, right) in [
            ("democrats", vec!["the"], vec!["proposed"]),
            ("vacc1ne", vec!["the"], vec!["mandate"]),
            ("tokens", vec!["case", "folding"], vec![]),
            ("unknownzzz", vec![], vec![]),
        ] {
            assert_eq!(
                spans.coherency(word, &left, &right).to_bits(),
                owned.coherency(word, &left, &right).to_bits(),
                "coherency({word:?})"
            );
            assert_eq!(
                spans.unigram_log_prob(word).to_bits(),
                owned.unigram_log_prob(word).to_bits()
            );
        }
    }

    #[test]
    fn cached_coherency_is_bit_identical() {
        let lm = political_lm();
        let mut cache = CoherencyCache::new();
        cache.begin();
        let windows: Vec<(&str, Vec<&str>, Vec<&str>)> = vec![
            ("democrats", vec!["belongs", "to", "the"], vec![]),
            ("vaccine", vec!["the"], vec!["mandate", "was"]),
            ("zzzz", vec![], vec![]),
            ("DEMOCRATS", vec!["the"], vec!["proposed"]),
            ("unknownzz", vec!["alsounknown"], vec!["the"]),
        ];
        for (cand, left, right) in &windows {
            let plain = lm.coherency(cand, left, right);
            let cached_miss = lm.coherency_cached(cand, left, right, &mut cache);
            let cached_hit = lm.coherency_cached(cand, left, right, &mut cache);
            assert_eq!(plain.to_bits(), cached_miss.to_bits(), "{cand}: miss");
            assert_eq!(plain.to_bits(), cached_hit.to_bits(), "{cand}: hit");
        }
    }

    #[test]
    fn cache_survives_generation_turnover() {
        let lm = political_lm();
        let mut cache = CoherencyCache::new();
        for text in 0..50 {
            cache.begin();
            // Same windows every "text": hits within a generation, fresh
            // entries across generations, always the uncached value.
            for cand in ["democrats", "republicans", "neverseen"] {
                let left = ["the"];
                let expect = lm.coherency(cand, &left, &[]);
                let got = lm.coherency_cached(cand, &left, &[], &mut cache);
                assert_eq!(expect.to_bits(), got.to_bits(), "text {text}, {cand}");
            }
        }
    }

    #[test]
    fn cache_distinguishes_oov_from_vocabulary_words() {
        // All OOV words share a key slot component; two different OOV words
        // in the same context legitimately share one (identical) score, but
        // an OOV word must never collide with a vocabulary word.
        let lm = political_lm();
        let mut cache = CoherencyCache::new();
        cache.begin();
        let oov_a = lm.coherency_cached("qqqq", &["the"], &[], &mut cache);
        let oov_b = lm.coherency_cached("wwww", &["the"], &[], &mut cache);
        let known = lm.coherency_cached("democrats", &["the"], &[], &mut cache);
        assert_eq!(oov_a.to_bits(), oov_b.to_bits(), "OOV words score alike");
        assert_ne!(known.to_bits(), oov_a.to_bits());
        assert_eq!(
            known.to_bits(),
            lm.coherency("democrats", &["the"], &[]).to_bits()
        );
    }

    #[test]
    fn bos_history_precompute_matches_bigram_mass() {
        // P(w | <s>, <s>) uses the BOS history count; the precomputed sum
        // must reproduce the brute-force bigram scan the seed used, which
        // existing ordering tests exercise only implicitly.
        let lm = political_lm();
        let sentence_starts = lm.prob("the", BOS, BOS)
            + lm.prob("biden", BOS, BOS)
            + lm.prob("trump", BOS, BOS)
            + lm.prob("people", BOS, BOS);
        // The four observed sentence-initial words carry most of the mass.
        assert!(sentence_starts > 0.5, "{sentence_starts}");
        assert!(lm.prob("mandate", BOS, BOS) < lm.prob("the", BOS, BOS));
    }

    #[test]
    fn unigram_log_prob_orders_by_frequency() {
        let lm = political_lm();
        assert!(lm.unigram_log_prob("the") > lm.unigram_log_prob("biden"));
        assert!(lm.unigram_log_prob("biden") > lm.unigram_log_prob("neverseen"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The conditional distribution over the full vocabulary (plus one
        /// unseen word) never sums above 1 + l0 (the uniform floor leaks at
        /// most l0 of extra mass to out-of-vocabulary words).
        #[test]
        fn conditional_mass_bounded(seed_sentences in proptest::collection::vec(
            proptest::collection::vec("[a-c]", 1..5), 1..6)
        ) {
            let mut b = LmBuilder::new();
            for s in &seed_sentences {
                b.train_sentence(s);
            }
            let lm = b.build(Interpolation::default());
            let vocab = ["a", "b", "c", "</s>"];
            let mass: f64 = vocab.iter().map(|w| lm.prob(w, "a", "b")).sum();
            prop_assert!(mass <= 1.0 + 0.05 + 1e-9, "mass {mass}");
        }

        /// Probabilities are always finite and positive regardless of input.
        #[test]
        fn prob_total(w in "\\PC{0,8}", a in "\\PC{0,8}", b in "\\PC{0,8}") {
            let lm = NgramLm::train(["hello world", "world hello again"]);
            let p = lm.prob(&w, &a, &b);
            prop_assert!(p.is_finite() && p > 0.0);
            prop_assert!(lm.coherency(&w, &[&a], &[&b]).is_finite());
        }

        /// The memoized coherency is bit-identical to the plain one over
        /// random models, windows, and repeat patterns — including cache
        /// collisions, evictions, and generation reuse.
        #[test]
        fn cached_coherency_equals_plain(
            seed_sentences in proptest::collection::vec(
                proptest::collection::vec("[a-e]{1,4}", 1..6), 1..8),
            queries in proptest::collection::vec(
                ("[a-f]{1,4}", proptest::collection::vec("[a-f]{1,4}", 0..3),
                 proptest::collection::vec("[a-f]{1,4}", 0..3)), 1..40),
            texts in 1usize..4,
        ) {
            let mut b = LmBuilder::new();
            for s in &seed_sentences {
                b.train_sentence(s);
            }
            let lm = b.build(Interpolation::default());
            let mut cache = CoherencyCache::new();
            for _ in 0..texts {
                cache.begin();
                for (cand, left, right) in &queries {
                    let left: Vec<&str> = left.iter().map(|s| s.as_str()).collect();
                    let right: Vec<&str> = right.iter().map(|s| s.as_str()).collect();
                    let plain = lm.coherency(cand, &left, &right);
                    let cached = lm.coherency_cached(cand, &left, &right, &mut cache);
                    prop_assert_eq!(plain.to_bits(), cached.to_bits(),
                        "{} | {:?} | {:?}", cand, left, right);
                }
            }
        }
    }
}
