//! # cryptext-confusables
//!
//! Visual-similarity character machinery for CrypText.
//!
//! Human-written perturbations routinely swap a letter for a visually
//! similar digit, symbol, accented letter, or foreign-script homoglyph
//! (`suicide → suic1de`, `democrats → dem0cr@ts`, `a → а` Cyrillic). The
//! paper's customized Soundex (§III-A) requires these glyph classes to
//! *encode identically*, and the perturbation generators need the inverse
//! map to *produce* such substitutions.
//!
//! Three views of the same data live here:
//!
//! * [`fold_char`] — canonicalize one character to its base ASCII letter(s).
//! * [`skeleton`] — canonicalize a whole token (lowercase + fold); two
//!   tokens are visually confusable iff their skeletons are equal.
//! * [`visual_variants`] — the inverse direction: all known stand-ins for a
//!   base letter, used by the attack/corpus generators.

#![warn(missing_docs)]

pub mod diacritics;
pub mod tables;

pub use diacritics::strip_diacritic;
pub use tables::{
    classify_variant, leet_decode_char, unicode_homoglyph_decode, variants_of_class,
    visual_variants, VariantClass,
};

/// Canonicalize a single character to its base lowercase ASCII form.
///
/// Resolution order (first match wins):
/// 1. ASCII letters → lowercased, unchanged otherwise.
/// 2. Leetspeak digits/symbols (`@ → a`, `1 → l`, `5 → s`, …).
/// 3. Unicode homoglyphs (Cyrillic/Greek/fullwidth lookalikes → Latin).
/// 4. Accented Latin letters → base letter (`é → e`).
///
/// Returns `None` for characters with no letter interpretation (whitespace,
/// most punctuation); callers decide whether to keep or drop those.
pub fn fold_char(c: char) -> Option<&'static str> {
    fn direct(c: char) -> Option<&'static str> {
        if c.is_ascii_alphabetic() {
            return Some(tables::ascii_lower_str(c));
        }
        tables::leet_decode_char(c)
            .or_else(|| tables::unicode_homoglyph_decode(c))
            .or_else(|| diacritics::strip_diacritic(c))
    }
    if let Some(s) = direct(c) {
        return Some(s);
    }
    // Uppercase forms whose lowercase is tabulated (the tables list the
    // common case of each pair; this keeps folding idempotent for the
    // rest, e.g. Ԁ → ԁ → d).
    let mut lower = c.to_lowercase();
    let lc = lower.next()?;
    if lower.next().is_none() && lc != c {
        return direct(lc);
    }
    None
}

/// Compute the visual *skeleton* of a token: lowercase, leet-decoded,
/// homoglyph-decoded, diacritic-stripped. Characters with no letter
/// interpretation are kept as-is (lowercased where possible) so that
/// `mus-lim` and `mus lim` remain distinct.
///
/// The skeleton is the equivalence key of "visually similar" in CrypText:
/// the customized Soundex encodes `skeleton(token)`, and
/// [`are_confusable`] compares skeletons.
pub fn skeleton(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match fold_char(c) {
            Some(folded) => out.push_str(folded),
            None => {
                for lc in c.to_lowercase() {
                    out.push(lc);
                }
            }
        }
    }
    out
}

/// Like [`skeleton`] but drops every character that has no letter
/// interpretation (hyphens, underscores, apostrophes, emoji). This is the
/// exact input the customized Soundex consumes: `mus-lim` must encode the
/// same as `muslim`.
pub fn letter_skeleton(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        if let Some(folded) = fold_char(c) {
            out.push_str(folded);
        }
    }
    out
}

/// Maximum number of ambiguous positions expanded by [`skeleton_variants`].
/// Beyond this, only the primary reading is used (expansion is exponential).
pub const MAX_AMBIGUOUS_EXPANSIONS: usize = 3;

/// All visual readings of a token, expanding ambiguous stand-ins.
///
/// `1` reads as `l` *and* `i` (`he11o → hello`, `suic1de → suicide`); a
/// deterministic single fold cannot satisfy both, so CrypText indexes tokens
/// under every reading. The primary skeleton is always first. At most
/// [`MAX_AMBIGUOUS_EXPANSIONS`] ambiguous positions are expanded (up to
/// 2^3 = 8 variants for typical two-way ambiguities); later ambiguous
/// characters fall back to their primary reading.
pub fn skeleton_variants(s: &str) -> Vec<String> {
    let mut variants: Vec<String> = vec![String::with_capacity(s.len())];
    let mut expanded = 0usize;
    for c in s.chars() {
        let alternates = tables::leet_alternates(c);
        let primary: Option<&'static str> = fold_char(c);
        if let (Some(primary), false, true) = (
            primary,
            alternates.is_empty(),
            expanded < MAX_AMBIGUOUS_EXPANSIONS,
        ) {
            expanded += 1;
            let mut next = Vec::with_capacity(variants.len() * (1 + alternates.len()));
            for v in &variants {
                let mut w = v.clone();
                w.push_str(primary);
                next.push(w);
                for alt in alternates {
                    let mut w = v.clone();
                    w.push_str(alt);
                    next.push(w);
                }
            }
            variants = next;
        } else {
            match primary {
                Some(folded) => {
                    for v in &mut variants {
                        v.push_str(folded);
                    }
                }
                None => {
                    for v in &mut variants {
                        for lc in c.to_lowercase() {
                            v.push(lc);
                        }
                    }
                }
            }
        }
    }
    variants
}

/// Are two tokens visually confusable, i.e. do any of their skeleton
/// readings coincide?
///
/// `are_confusable("suicide", "suic1de")` (via the `1 → i` reading) and
/// `are_confusable("democrats", "dem0cr@ts")` are both true.
pub fn are_confusable(a: &str, b: &str) -> bool {
    let va = skeleton_variants(a);
    let vb = skeleton_variants(b);
    va.iter().any(|x| vb.iter().any(|y| x == y))
}

/// Fraction of characters in `s` that are non-canonical stand-ins (their
/// fold differs from the character itself, ignoring plain case changes).
/// A quick signal for "how visually perturbed is this token".
pub fn substitution_density(s: &str) -> f64 {
    let mut total = 0usize;
    let mut subs = 0usize;
    for c in s.chars() {
        total += 1;
        if let Some(folded) = fold_char(c) {
            let mut lower = c.to_lowercase();
            let is_plain_case = folded.chars().eq(lower.by_ref());
            if !is_plain_case {
                subs += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        subs as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_ascii_letters_lowercase() {
        assert_eq!(fold_char('A'), Some("a"));
        assert_eq!(fold_char('z'), Some("z"));
    }

    #[test]
    fn fold_paper_examples() {
        // §III-A: "l"→"1", "a"→"@", "S"→"5" must encode the same.
        assert_eq!(fold_char('1'), Some("l"));
        assert_eq!(fold_char('@'), Some("a"));
        assert_eq!(fold_char('5'), Some("s"));
        assert_eq!(fold_char('0'), Some("o"));
        assert_eq!(fold_char('3'), Some("e"));
        assert_eq!(fold_char('$'), Some("s"));
        assert_eq!(fold_char('!'), Some("i"));
    }

    #[test]
    fn fold_unknown_chars_is_none() {
        assert_eq!(fold_char(' '), None);
        assert_eq!(fold_char('-'), None);
        assert_eq!(fold_char('~'), None);
    }

    #[test]
    fn skeleton_paper_tokens() {
        // Primary reading of '1' is 'l'; the 'i' reading appears in
        // skeleton_variants (tested below).
        assert_eq!(skeleton("suic1de"), "suiclde");
        assert_eq!(skeleton("dem0cr@ts"), "democrats");
        assert_eq!(skeleton("republic@@ns"), "republicaans");
        assert_eq!(skeleton("democRATs"), "democrats");
        assert_eq!(skeleton("RepubLIEcans"), "republiecans");
    }

    #[test]
    fn skeleton_keeps_joiners() {
        assert_eq!(skeleton("mus-lim"), "mus-lim");
        assert_ne!(skeleton("mus-lim"), skeleton("muslim"));
    }

    #[test]
    fn letter_skeleton_drops_joiners() {
        assert_eq!(letter_skeleton("mus-lim"), "muslim");
        assert_eq!(letter_skeleton("vac-cine"), "vaccine");
        assert_eq!(letter_skeleton("chi-nese"), "chinese");
        assert_eq!(letter_skeleton("d'oh!"), "dohi");
    }

    #[test]
    fn confusable_pairs() {
        assert!(are_confusable("suicide", "suic1de"));
        assert!(are_confusable("democrats", "dem0cr@ts"));
        assert!(are_confusable("porn", "p0rn"));
        assert!(!are_confusable("democrats", "republicans"));
        assert!(!are_confusable("the", "thee"));
    }

    #[test]
    fn cyrillic_homoglyphs_fold_to_latin() {
        // "раypal" with Cyrillic р/а folds to paypal.
        assert_eq!(skeleton("р\u{0430}ypal"), "paypal");
        assert!(are_confusable("paypal", "р\u{0430}ypal"));
    }

    #[test]
    fn accented_viper_style_fold() {
        // VIPER-style accent perturbations fold away.
        assert_eq!(skeleton("démocrats"), "democrats");
        assert_eq!(skeleton("vãccine"), "vaccine");
    }

    #[test]
    fn substitution_density_examples() {
        assert_eq!(substitution_density("democrats"), 0.0);
        assert!(substitution_density("dem0cr@ts") > 0.2);
        assert!(substitution_density("dem0cr@ts") < 0.3);
        assert_eq!(substitution_density(""), 0.0);
        // Pure case change is not a visual substitution.
        assert_eq!(substitution_density("DemocRATs"), 0.0);
    }

    #[test]
    fn skeleton_variants_expand_ambiguity() {
        let vs = skeleton_variants("suic1de");
        assert!(vs.contains(&"suiclde".to_string()), "primary reading");
        assert!(vs.contains(&"suicide".to_string()), "alternate reading");
        assert_eq!(vs.len(), 2);
        // Unambiguous tokens produce exactly one variant.
        assert_eq!(skeleton_variants("democrats"), vec!["democrats"]);
        assert_eq!(skeleton_variants("dem0cr@ts"), vec!["democrats"]);
    }

    #[test]
    fn skeleton_variants_cap_expansion() {
        // Six ambiguous '1's: only the first three expand → 8 variants.
        let vs = skeleton_variants("111111");
        assert_eq!(vs.len(), 8);
        // All variants agree on the tail (primary 'l') beyond the cap.
        assert!(vs.iter().all(|v| v.ends_with("lll")));
    }

    #[test]
    fn skeleton_variants_first_is_primary() {
        assert_eq!(skeleton_variants("he11o")[0], skeleton("he11o"));
        assert_eq!(skeleton("he11o"), "hello");
    }

    #[test]
    fn skeleton_is_idempotent_on_examples() {
        for s in [
            "suic1de",
            "dem0cr@ts",
            "démocrats",
            "р\u{0430}ypal",
            "mus-lim",
        ] {
            let once = skeleton(s);
            assert_eq!(skeleton(&once), once, "skeleton({s}) stable");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The skeleton operation is idempotent for arbitrary strings:
        /// folding an already-folded string changes nothing.
        #[test]
        fn skeleton_idempotent(s in "\\PC{0,40}") {
            let once = skeleton(&s);
            prop_assert_eq!(skeleton(&once), once.clone());
        }

        /// letter_skeleton output contains only ASCII lowercase letters.
        #[test]
        fn letter_skeleton_is_ascii_lower(s in "\\PC{0,40}") {
            let sk = letter_skeleton(&s);
            prop_assert!(sk.bytes().all(|b| b.is_ascii_lowercase()));
        }

        /// are_confusable is reflexive and symmetric.
        #[test]
        fn confusable_reflexive_symmetric(a in "\\PC{0,20}", b in "\\PC{0,20}") {
            prop_assert!(are_confusable(&a, &a));
            prop_assert_eq!(are_confusable(&a, &b), are_confusable(&b, &a));
        }

        /// Every variant listed for a base letter folds back to that letter.
        #[test]
        fn variants_round_trip(c in proptest::char::range('a', 'z')) {
            for &v in visual_variants(c) {
                let folded = fold_char(v);
                prop_assert_eq!(
                    folded, Some(tables::ascii_lower_str(c)),
                    "variant {} of {} folds back", v, c
                );
            }
        }
    }
}
