//! Accented-Latin to base-letter folding.
//!
//! Covers the Latin-1 Supplement and Latin Extended-A repertoires that the
//! VIPER baseline ([Eger et al., NAACL'19]) perturbs with, plus a few
//! extended characters seen in the wild. Deliberately *not* a full Unicode
//! decomposition: CrypText only needs the letters that plausibly appear as
//! visual stand-ins in English social-media text.

/// Strip the diacritic from an accented Latin letter, returning the base
/// lowercase letter, or `None` when `c` is not a known accented form.
pub fn strip_diacritic(c: char) -> Option<&'static str> {
    Some(match c {
        'à' | 'á' | 'â' | 'ã' | 'ä' | 'å' | 'ā' | 'ă' | 'ą' | 'À' | 'Á' | 'Â' | 'Ã' | 'Ä' | 'Å'
        | 'Ā' | 'Ă' | 'Ą' => "a",
        'ç' | 'ć' | 'ĉ' | 'ċ' | 'č' | 'Ç' | 'Ć' | 'Ĉ' | 'Ċ' | 'Č' => "c",
        'ď' | 'đ' | 'Ď' | 'Đ' | 'ð' | 'Ð' => "d",
        'è' | 'é' | 'ê' | 'ë' | 'ē' | 'ĕ' | 'ė' | 'ę' | 'ě' | 'È' | 'É' | 'Ê' | 'Ë' | 'Ē' | 'Ĕ'
        | 'Ė' | 'Ę' | 'Ě' => "e",
        'ƒ' => "f",
        'ĝ' | 'ğ' | 'ġ' | 'ģ' | 'Ĝ' | 'Ğ' | 'Ġ' | 'Ģ' => "g",
        'ĥ' | 'ħ' | 'Ĥ' | 'Ħ' => "h",
        'ì' | 'í' | 'î' | 'ï' | 'ĩ' | 'ī' | 'ĭ' | 'į' | 'ı' | 'Ì' | 'Í' | 'Î' | 'Ï' | 'Ĩ' | 'Ī'
        | 'Ĭ' | 'Į' | 'İ' => "i",
        'ĵ' | 'Ĵ' => "j",
        'ķ' | 'Ķ' => "k",
        'ĺ' | 'ļ' | 'ľ' | 'ŀ' | 'ł' | 'Ĺ' | 'Ļ' | 'Ľ' | 'Ŀ' | 'Ł' => "l",
        'ñ' | 'ń' | 'ņ' | 'ň' | 'ŉ' | 'Ñ' | 'Ń' | 'Ņ' | 'Ň' => "n",
        'ò' | 'ó' | 'ô' | 'õ' | 'ö' | 'ø' | 'ō' | 'ŏ' | 'ő' | 'Ò' | 'Ó' | 'Ô' | 'Õ' | 'Ö' | 'Ø'
        | 'Ō' | 'Ŏ' | 'Ő' => "o",
        'ŕ' | 'ŗ' | 'ř' | 'Ŕ' | 'Ŗ' | 'Ř' => "r",
        'ś' | 'ŝ' | 'ş' | 'š' | 'ș' | 'ß' | 'Ś' | 'Ŝ' | 'Ş' | 'Š' | 'Ș' => "s",
        'ţ' | 'ť' | 'ŧ' | 'ț' | 'Ţ' | 'Ť' | 'Ŧ' | 'Ț' => "t",
        'ù' | 'ú' | 'û' | 'ü' | 'ũ' | 'ū' | 'ŭ' | 'ů' | 'ű' | 'ų' | 'Ù' | 'Ú' | 'Û' | 'Ü' | 'Ũ'
        | 'Ū' | 'Ŭ' | 'Ů' | 'Ű' | 'Ų' => "u",
        'ŵ' | 'Ŵ' => "w",
        'ý' | 'ÿ' | 'ŷ' | 'Ý' | 'Ŷ' | 'Ÿ' => "y",
        'ź' | 'ż' | 'ž' | 'Ź' | 'Ż' | 'Ž' => "z",
        'æ' | 'Æ' => "ae",
        'œ' | 'Œ' => "oe",
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_accents_fold() {
        assert_eq!(strip_diacritic('é'), Some("e"));
        assert_eq!(strip_diacritic('ü'), Some("u"));
        assert_eq!(strip_diacritic('ñ'), Some("n"));
        assert_eq!(strip_diacritic('ç'), Some("c"));
        assert_eq!(strip_diacritic('Å'), Some("a"));
    }

    #[test]
    fn ligatures_expand() {
        assert_eq!(strip_diacritic('æ'), Some("ae"));
        assert_eq!(strip_diacritic('Œ'), Some("oe"));
        assert_eq!(strip_diacritic('ß'), Some("s"));
    }

    #[test]
    fn plain_letters_and_symbols_are_none() {
        assert_eq!(strip_diacritic('e'), None);
        assert_eq!(strip_diacritic('E'), None);
        assert_eq!(strip_diacritic('!'), None);
        assert_eq!(
            strip_diacritic('д'),
            None,
            "non-lookalike cyrillic unmapped"
        );
    }

    #[test]
    fn outputs_are_lowercase_ascii() {
        for c in ['à', 'É', 'î', 'Ø', 'ü', 'ß', 'æ', 'Ž', 'ł'] {
            let out = strip_diacritic(c).unwrap();
            assert!(out.bytes().all(|b| b.is_ascii_lowercase()), "{c} → {out}");
        }
    }
}
