//! Static confusable-character tables.
//!
//! Sources: the leetspeak conventions observed in the paper's corpora
//! (`@→a`, `1→l`, `0→o`, `5→s`, `3→e`, `$→s`, `!→i`), the Unicode
//! confusables most common in adversarial text (Cyrillic, Greek and
//! fullwidth lookalikes of Latin letters), and the accent repertoire the
//! VIPER baseline draws from.
//!
//! Two invariants every entry must satisfy (enforced by tests and the
//! crate-level property tests):
//!
//! 1. Decoding is *total over the tables*: every table entry maps to one or
//!    more lowercase ASCII letters.
//! 2. Every character in [`visual_variants`]`(c)` folds back to `c` via the
//!    crate's `fold_char` — i.e. the generator direction and the decoder
//!    direction agree.

/// Classification of how a stand-in character relates to its base letter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VariantClass {
    /// ASCII digit or symbol used for its shape (`@`, `1`, `$`).
    Leet,
    /// Letter from another script with near-identical glyph (Cyrillic `а`).
    Homoglyph,
    /// Accented form of the same Latin letter (`é`).
    Accent,
}

/// Static lowercase strings for the 26 ASCII letters, so `fold_char` can
/// hand out `&'static str` without allocating.
const ASCII_LOWER: [&str; 26] = [
    "a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "l", "m", "n", "o", "p", "q", "r", "s",
    "t", "u", "v", "w", "x", "y", "z",
];

/// The lowercase form of an ASCII letter as a `'static` string.
///
/// # Panics
/// Panics if `c` is not an ASCII alphabetic character.
#[inline]
pub fn ascii_lower_str(c: char) -> &'static str {
    debug_assert!(c.is_ascii_alphabetic());
    ASCII_LOWER[(c.to_ascii_lowercase() as u8 - b'a') as usize]
}

/// Decode a leetspeak digit/symbol to its primary letter reading.
///
/// Ambiguous glyphs have one *primary* reading here (used for skeletons) and
/// possibly extra readings in [`leet_alternates`] (used by the phonetic
/// encoder's multi-key expansion): `1` reads `l` primarily but also `i`.
pub fn leet_decode_char(c: char) -> Option<&'static str> {
    Some(match c {
        '0' => "o",
        '1' => "l",
        '2' => "z",
        '3' => "e",
        '4' => "a",
        '5' => "s",
        '6' => "g",
        '7' => "t",
        '8' => "b",
        '9' => "g",
        '@' => "a",
        '$' => "s",
        '!' => "i",
        '+' => "t",
        '(' => "c",
        '|' => "l",
        '¢' => "c",
        '€' => "e",
        '£' => "l",
        _ => return None,
    })
}

/// Secondary readings of ambiguous leet glyphs. Empty for unambiguous ones.
///
/// `1` is the famous case: it stands for `l` (`he11o`) *and* for `i`
/// (`suic1de`). The customized Soundex indexes tokens under every reading.
pub fn leet_alternates(c: char) -> &'static [&'static str] {
    match c {
        '1' => &["i"],
        '!' => &["l"],
        '|' => &["i"],
        '9' => &["q"],
        '£' => &["e"],
        _ => &[],
    }
}

/// Decode a non-Latin homoglyph (Cyrillic/Greek/fullwidth/symbol lookalike)
/// to the Latin letter it imitates.
pub fn unicode_homoglyph_decode(c: char) -> Option<&'static str> {
    // Fullwidth Latin block maps positionally.
    if ('\u{FF21}'..='\u{FF3A}').contains(&c) {
        return Some(ASCII_LOWER[(c as u32 - 0xFF21) as usize]);
    }
    if ('\u{FF41}'..='\u{FF5A}').contains(&c) {
        return Some(ASCII_LOWER[(c as u32 - 0xFF41) as usize]);
    }
    Some(match c {
        // Cyrillic lowercase lookalikes.
        'а' => "a",
        'в' => "b",
        'с' => "c",
        'ԁ' => "d",
        'е' => "e",
        'г' => "r",
        'һ' => "h",
        'і' => "i",
        'ј' => "j",
        'к' => "k",
        'м' => "m",
        'н' => "h",
        'п' => "n",
        'о' => "o",
        'р' => "p",
        'ԛ' => "q",
        'ѕ' => "s",
        'т' => "t",
        'у' => "y",
        'ѵ' => "v",
        'ѡ' => "w",
        'х' => "x",
        // Cyrillic uppercase lookalikes.
        'А' => "a",
        'В' => "b",
        'Е' => "e",
        'З' => "e",
        'І' => "i",
        'Ј' => "j",
        'К' => "k",
        'М' => "m",
        'Н' => "h",
        'О' => "o",
        'Р' => "p",
        'С' => "c",
        'Т' => "t",
        'У' => "y",
        'Х' => "x",
        'Ѕ' => "s",
        // Greek lowercase lookalikes.
        'α' => "a",
        'β' => "b",
        'ε' => "e",
        'η' => "n",
        'ι' => "i",
        'κ' => "k",
        'ν' => "v",
        'ο' => "o",
        'ρ' => "p",
        'τ' => "t",
        'υ' => "u",
        'χ' => "x",
        'ω' => "w",
        'γ' => "y",
        // Greek uppercase lookalikes.
        'Α' => "a",
        'Β' => "b",
        'Ε' => "e",
        'Ζ' => "z",
        'Η' => "h",
        'Ι' => "i",
        'Κ' => "k",
        'Μ' => "m",
        'Ν' => "n",
        'Ο' => "o",
        'Ρ' => "p",
        'Τ' => "t",
        'Υ' => "y",
        'Χ' => "x",
        // Symbol lookalikes.
        '×' => "x",
        'µ' => "u",
        'þ' => "p",
        'Þ' => "p",
        'ℓ' => "l",
        _ => return None,
    })
}

// Per-letter variant lists. Only characters whose *primary* fold is the base
// letter may appear (the crate property test enforces this).
const VAR_A: &[char] = &['@', '4', 'а', 'α', 'à', 'á', 'â', 'ã', 'ä', 'å', 'ā'];
const VAR_B: &[char] = &['8', 'β', 'в'];
const VAR_C: &[char] = &['(', '¢', 'с', 'ç', 'ć', 'č'];
const VAR_D: &[char] = &['ԁ', 'ď', 'đ'];
const VAR_E: &[char] = &['3', '€', 'е', 'ε', 'è', 'é', 'ê', 'ë', 'ē', 'ė', 'ę'];
const VAR_F: &[char] = &['ƒ'];
const VAR_G: &[char] = &['6', '9', 'ğ', 'ġ', 'ģ'];
const VAR_H: &[char] = &['н', 'һ', 'ĥ', 'ħ'];
const VAR_I: &[char] = &['!', 'і', 'ι', 'ì', 'í', 'î', 'ï', 'ī', 'į', 'ı'];
const VAR_J: &[char] = &['ј', 'ĵ'];
const VAR_K: &[char] = &['κ', 'к', 'ķ'];
const VAR_L: &[char] = &['1', '|', '£', 'ℓ', 'ĺ', 'ļ', 'ľ'];
const VAR_M: &[char] = &['м'];
const VAR_N: &[char] = &['η', 'п', 'ñ', 'ń', 'ņ', 'ň'];
const VAR_O: &[char] = &['0', 'о', 'ο', 'ò', 'ó', 'ô', 'õ', 'ö', 'ø', 'ō'];
const VAR_P: &[char] = &['р', 'ρ', 'þ'];
const VAR_Q: &[char] = &['ԛ'];
const VAR_R: &[char] = &['г', 'ŕ', 'ř', 'ŗ'];
const VAR_S: &[char] = &['5', '$', 'ѕ', 'ś', 'š', 'ş', 'ș'];
const VAR_T: &[char] = &['7', '+', 'т', 'ţ', 'ť', 'ț'];
const VAR_U: &[char] = &['υ', 'µ', 'ù', 'ú', 'û', 'ü', 'ū', 'ů', 'ų'];
const VAR_V: &[char] = &['ν', 'ѵ'];
const VAR_W: &[char] = &['ω', 'ѡ', 'ŵ'];
const VAR_X: &[char] = &['х', 'χ', '×'];
const VAR_Y: &[char] = &['у', 'γ', 'ý', 'ÿ'];
const VAR_Z: &[char] = &['2', 'ž', 'ź', 'ż'];

/// All known visual stand-ins for a base ASCII letter (either case).
/// Returns an empty slice for non-letters.
pub fn visual_variants(base: char) -> &'static [char] {
    if !base.is_ascii_alphabetic() {
        return &[];
    }
    match base.to_ascii_lowercase() {
        'a' => VAR_A,
        'b' => VAR_B,
        'c' => VAR_C,
        'd' => VAR_D,
        'e' => VAR_E,
        'f' => VAR_F,
        'g' => VAR_G,
        'h' => VAR_H,
        'i' => VAR_I,
        'j' => VAR_J,
        'k' => VAR_K,
        'l' => VAR_L,
        'm' => VAR_M,
        'n' => VAR_N,
        'o' => VAR_O,
        'p' => VAR_P,
        'q' => VAR_Q,
        'r' => VAR_R,
        's' => VAR_S,
        't' => VAR_T,
        'u' => VAR_U,
        'v' => VAR_V,
        'w' => VAR_W,
        'x' => VAR_X,
        'y' => VAR_Y,
        'z' => VAR_Z,
        _ => unreachable!("ascii alphabetic"),
    }
}

/// Classify a variant character relative to its base letter.
/// Returns `None` when `c` is not a known stand-in.
pub fn classify_variant(c: char) -> Option<VariantClass> {
    if leet_decode_char(c).is_some() {
        Some(VariantClass::Leet)
    } else if unicode_homoglyph_decode(c).is_some() {
        Some(VariantClass::Homoglyph)
    } else if crate::diacritics::strip_diacritic(c).is_some() {
        Some(VariantClass::Accent)
    } else {
        None
    }
}

/// Variants of `base` restricted to one class (e.g. only accents, for the
/// VIPER baseline).
pub fn variants_of_class(base: char, class: VariantClass) -> Vec<char> {
    visual_variants(base)
        .iter()
        .copied()
        .filter(|&v| classify_variant(v) == Some(class))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_lower_str_all_letters() {
        assert_eq!(ascii_lower_str('A'), "a");
        assert_eq!(ascii_lower_str('m'), "m");
        assert_eq!(ascii_lower_str('Z'), "z");
    }

    #[test]
    fn leet_primary_readings() {
        assert_eq!(leet_decode_char('1'), Some("l"));
        assert_eq!(leet_decode_char('@'), Some("a"));
        assert_eq!(leet_decode_char('7'), Some("t"));
        assert_eq!(leet_decode_char('x'), None, "letters are not leet");
        assert_eq!(leet_decode_char('?'), None);
    }

    #[test]
    fn leet_alternates_cover_the_one_i_ambiguity() {
        assert_eq!(leet_alternates('1'), &["i"]);
        assert!(leet_alternates('0').is_empty());
        assert!(leet_alternates('@').is_empty());
    }

    #[test]
    fn fullwidth_maps_positionally() {
        assert_eq!(unicode_homoglyph_decode('Ａ'), Some("a"));
        assert_eq!(unicode_homoglyph_decode('ｚ'), Some("z"));
        assert_eq!(unicode_homoglyph_decode('ｍ'), Some("m"));
    }

    #[test]
    fn cyrillic_and_greek_decode() {
        assert_eq!(unicode_homoglyph_decode('а'), Some("a"));
        assert_eq!(unicode_homoglyph_decode('р'), Some("p"));
        assert_eq!(unicode_homoglyph_decode('ο'), Some("o"));
        assert_eq!(unicode_homoglyph_decode('ν'), Some("v"));
        assert_eq!(
            unicode_homoglyph_decode('q'),
            None,
            "latin is not a homoglyph"
        );
    }

    #[test]
    fn all_table_outputs_are_ascii_lowercase() {
        let leet = "0123456789@$!+(|¢€£";
        for c in leet.chars() {
            let out = leet_decode_char(c).unwrap();
            assert!(out.bytes().all(|b| b.is_ascii_lowercase()), "{c} → {out}");
        }
    }

    #[test]
    fn every_letter_has_variants_except_none() {
        for c in 'a'..='z' {
            let v = visual_variants(c);
            assert!(!v.is_empty(), "{c} should have at least one variant");
        }
        assert!(visual_variants('7').is_empty());
        assert!(visual_variants(' ').is_empty());
    }

    #[test]
    fn variants_accept_uppercase_base() {
        assert_eq!(visual_variants('A'), visual_variants('a'));
    }

    #[test]
    fn classify_variant_examples() {
        assert_eq!(classify_variant('@'), Some(VariantClass::Leet));
        assert_eq!(classify_variant('а'), Some(VariantClass::Homoglyph));
        assert_eq!(classify_variant('é'), Some(VariantClass::Accent));
        assert_eq!(classify_variant('q'), None);
    }

    #[test]
    fn variants_of_class_filters() {
        let accents = variants_of_class('e', VariantClass::Accent);
        assert!(accents.contains(&'é'));
        assert!(!accents.contains(&'3'));
        let leet = variants_of_class('e', VariantClass::Leet);
        assert!(leet.contains(&'3'));
        assert!(leet.contains(&'€'));
    }

    #[test]
    fn no_variant_is_plain_ascii_letter() {
        for base in 'a'..='z' {
            for &v in visual_variants(base) {
                assert!(
                    !v.is_ascii_alphabetic(),
                    "variant {v} of {base} must not be a plain letter"
                );
            }
        }
    }
}
