//! Experiment A1 — ablation: classic Soundex vs the CrypText
//! customization (§III-A).
//!
//! Two claims motivate the customization:
//! 1. classic Soundex is blind to visually-similar substitutions, so leet
//!    perturbations land in the wrong bucket;
//! 2. fixing only the first character causes false phonetic collisions
//!    (losbian/lesbian both `L215`), which the phonetic-level parameter
//!    `k` removes.
//!
//! We measure both: bucket-recall of gold human perturbations under each
//! encoder, and the collision rate among distinct dictionary words.
//!
//! ```text
//! cargo run --release -p cryptext-bench --bin exp_ablation_soundex
//! ```

use cryptext_attacks::{HumanPerturber, Strategy, TokenPerturber};
use cryptext_bench::{pct, row};
use cryptext_common::SplitMix64;
use cryptext_phonetics::{classic_soundex, CustomSoundex};

fn main() {
    let words = cryptext_corpus::english_lexicon();
    let mut rng = SplitMix64::new(41);

    // Gold perturbation pairs per strategy.
    let strategies = [
        Strategy::Emphasis,
        Strategy::Hyphenation,
        Strategy::Repetition,
        Strategy::Leet,
        Strategy::PhoneticSub,
        Strategy::Censor,
    ];
    println!("# Ablation A1 — does the perturbation stay in the original's bucket?");
    println!();
    println!("| strategy | classic | custom k=0 | custom k=1 | custom k=2 |");
    println!("|----------|---------|------------|------------|------------|");
    for strategy in strategies {
        let perturber = HumanPerturber::only(strategy);
        let mut totals = 0usize;
        let mut classic_hits = 0usize;
        let mut custom_hits = [0usize; 3];
        for word in words.iter().filter(|w| w.len() >= 5) {
            let Some(perturbed) = perturber.perturb_token(word, &mut rng) else {
                continue;
            };
            totals += 1;
            if let (Some(a), Some(b)) = (classic_soundex(word), classic_soundex(&perturbed)) {
                if a == b {
                    classic_hits += 1;
                }
            }
            for (k, hits) in custom_hits.iter_mut().enumerate() {
                let sx = CustomSoundex::new(k);
                let base = sx.encode(word).expect("dictionary word");
                if sx.encode_all(&perturbed).contains(&base) {
                    *hits += 1;
                }
            }
        }
        let cells = vec![
            strategy.name().to_string(),
            pct(classic_hits as f64 / totals.max(1) as f64),
            pct(custom_hits[0] as f64 / totals.max(1) as f64),
            pct(custom_hits[1] as f64 / totals.max(1) as f64),
            pct(custom_hits[2] as f64 / totals.max(1) as f64),
        ];
        println!("{}", row(&cells));
    }
    println!();
    println!(
        "Expected shape: classic recalls pure case/hyphen/repetition changes \
         but misses leet; the custom encoder recalls every sound-preserving \
         strategy at 100% for k ≤ 1 (censor is deliberately non-preserving)."
    );

    // False-collision study: distinct dictionary words sharing a code.
    println!();
    println!("## Distinct-word collisions per encoder (lower = sharper buckets)");
    println!();
    println!("| encoder | buckets | collided word pairs | example |");
    println!("|---------|---------|---------------------|---------|");
    for (name, code_of) in [
        (
            "classic",
            Box::new(|w: &str| classic_soundex(w).map(|c| c.into_string()))
                as Box<dyn Fn(&str) -> Option<String>>,
        ),
        (
            "custom k=0",
            Box::new(|w: &str| CustomSoundex::new(0).encode(w).map(|c| c.into_string())),
        ),
        (
            "custom k=1",
            Box::new(|w: &str| CustomSoundex::new(1).encode(w).map(|c| c.into_string())),
        ),
        (
            "custom k=2",
            Box::new(|w: &str| CustomSoundex::new(2).encode(w).map(|c| c.into_string())),
        ),
    ] {
        let mut buckets: std::collections::BTreeMap<String, Vec<&str>> = Default::default();
        for w in words {
            if let Some(code) = code_of(w) {
                buckets.entry(code).or_default().push(w);
            }
        }
        let mut pairs = 0usize;
        let mut example = String::from("—");
        for members in buckets.values() {
            if members.len() > 1 {
                pairs += members.len() * (members.len() - 1) / 2;
                if example == "—" {
                    example = members[..2.min(members.len())].join("/");
                }
            }
        }
        println!(
            "{}",
            row(&[
                name.to_string(),
                buckets.len().to_string(),
                pairs.to_string(),
                example
            ])
        );
    }
    println!();
    // The motivating pair, explicitly.
    println!(
        "losbian vs lesbian: classic {:?} == {:?}; custom k=1 {:?} != {:?}",
        classic_soundex("losbian").unwrap(),
        classic_soundex("lesbian").unwrap(),
        CustomSoundex::new(1).encode("losbian").unwrap(),
        CustomSoundex::new(1).encode("lesbian").unwrap(),
    );
}
