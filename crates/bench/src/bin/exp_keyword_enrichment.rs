//! Experiment U1 — the §III-B **keyword enrichment** use case.
//!
//! The paper (Nov 2021 Twitter data): searching "democrats" finds 67%
//! negative tweets, but adding the perturbations of "democrats" from Look
//! Up raises that to 87% (republicans 66→84, vaccine 46→61) — perturbed
//! spellings concentrate in negative content that clean-keyword search
//! cannot reach.
//!
//! We reproduce the *shape* over the simulated platform: per keyword, the
//! negative fraction of the plain query vs. the Look-Up-enriched query.
//! Sentiment is scored by a trained classifier, not gold labels, matching
//! the paper's pipeline.
//!
//! ```text
//! cargo run --release -p cryptext-bench --bin exp_keyword_enrichment
//! ```

use cryptext_bench::{build_db, build_platform_with, pct, row};
use cryptext_core::{look_up, LookupParams};
use cryptext_corpus::{generator, CorpusConfig, Sentiment, Topic};
use cryptext_ml::{Classifier, Example, NaiveBayes};
use cryptext_stream::{SearchQuery, SocialPlatform};

/// Negative fraction of a query's result set under `model`.
fn negative_fraction(
    platform: &SocialPlatform,
    query: &SearchQuery,
    model: &NaiveBayes,
) -> (f64, usize) {
    let results = platform.search(query);
    if results.total == 0 {
        return (0.0, 0);
    }
    let negatives = results
        .posts
        .iter()
        .filter(|p| model.predict(&p.text) == Sentiment::Negative.class_index())
        .count();
    (negatives as f64 / results.posts.len() as f64, results.total)
}

fn main() {
    // Train the sentiment scorer on clean text (as Google's API would be).
    let clean = generator::generate(CorpusConfig {
        n_docs: 3_000,
        seed: 501,
        perturb_prob_negative: 0.0,
        perturb_prob_positive: 0.0,
        secondary_perturb_prob: 0.0,
        ..CorpusConfig::default()
    });
    let sentiment_examples: Vec<Example> = clean
        .docs
        .iter()
        .map(|d| Example::new(d.text.clone(), d.sentiment.class_index()))
        .collect();
    let sentiment = NaiveBayes::train(&sentiment_examples, 2, 1.0);

    // Per-keyword streams: topic pinned, baseline negativity calibrated to
    // the paper's plain-query numbers (politics ≈ two-thirds negative,
    // vaccine below one-half).
    let mut politics_weights = [0.0; 5];
    politics_weights[Topic::Politics.class_index()] = 1.0;
    let mut health_weights = [0.0; 5];
    health_weights[Topic::Health.class_index()] = 1.0;
    let scenarios: [(&str, [f64; 5], f64); 3] = [
        ("democrats", politics_weights, 0.80),
        ("republicans", politics_weights, 0.78),
        ("vaccine", health_weights, 0.60),
    ];

    println!("# §III-B — keyword enrichment: negative-sentiment fraction");
    println!();
    println!(
        "| keyword | plain query | enriched query | extra posts | paper plain | paper enriched |"
    );
    println!(
        "|---------|-------------|----------------|-------------|-------------|----------------|"
    );
    let paper = [
        ("democrats", 67, 87),
        ("republicans", 66, 84),
        ("vaccine", 46, 61),
    ];
    for ((keyword, weights, neg_frac), (_, p_plain, p_enr)) in scenarios.iter().zip(paper) {
        let platform = build_platform_with(
            5_000,
            0xBEEF ^ neg_frac.to_bits(),
            CorpusConfig {
                topic_weights: *weights,
                negative_fraction: *neg_frac,
                // The wild regularity this experiment rides on: perturbed
                // spellings concentrate almost exclusively in negative
                // content (§III-B's censorship-evasion motivation).
                perturb_prob_negative: 0.7,
                perturb_prob_positive: 0.05,
                ..CorpusConfig::default()
            },
        );
        let db = build_db(&platform);

        let plain_q = SearchQuery::keyword(*keyword);
        let (plain_neg, plain_total) = negative_fraction(&platform, &plain_q, &sentiment);

        // Enrich with Look Up perturbations (observed only).
        let hits = look_up(
            &db,
            keyword,
            LookupParams::paper_default()
                .perturbations_only()
                .observed(),
        )
        .expect("lookup");
        let mut terms: Vec<String> = vec![keyword.to_string()];
        terms.extend(hits.into_iter().map(|h| h.token));
        let enriched_q = SearchQuery::any_of(terms);
        let (enriched_neg, enriched_total) = negative_fraction(&platform, &enriched_q, &sentiment);

        println!(
            "{}",
            row(&[
                keyword.to_string(),
                pct(plain_neg),
                pct(enriched_neg),
                format!("+{}", enriched_total.saturating_sub(plain_total)),
                format!("{p_plain}%"),
                format!("{p_enr}%"),
            ])
        );
    }
    println!();
    println!(
        "Shape check: enriched queries surface strictly more posts and a \
         higher negative fraction for every keyword, with politics plain \
         queries around two-thirds negative and vaccine below one-half — \
         matching the paper's ordering."
    );
}
