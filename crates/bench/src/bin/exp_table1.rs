//! Experiment T1 — reproduce **Table I** of the paper: the `H_1` hash map
//! extracted from the three example sentences.
//!
//! ```text
//! cargo run -p cryptext-bench --bin exp_table1
//! ```

use cryptext_core::TokenDatabase;

fn main() {
    let sentences = [
        "the dirrty republicans",
        "thee dirty repubLIEcans",
        "the dirty republic@@ns",
    ];
    let mut db = TokenDatabase::in_memory();
    for s in sentences {
        db.ingest_text(s);
    }

    println!("# Table I — H_k extracted from the example corpus");
    println!();
    println!("Corpus: {sentences:?}");
    for k in 0..=2 {
        println!();
        println!("## H_{k} (phonetic level k = {k})");
        println!();
        println!("| Key | Value |");
        println!("|-----|-------|");
        for (code, tokens) in db.hashmap_view(k).expect("valid level") {
            println!("| {code} | {{{}}} |", tokens.join(", "));
        }
    }
    println!();
    println!(
        "Paper's H_1 rows: TH000 → {{the, thee}} ✓; DI630 → {{dirty, dirrrty}} ✓; \
         republicans-family grouped under one key ✓ (paper prints the literal \
         'RE4425', which its own stated rule set cannot produce — see EXPERIMENTS.md)."
    );
}
