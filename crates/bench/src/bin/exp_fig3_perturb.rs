//! Experiment F3 — **Figure 3**: the Perturbation function.
//!
//! CrypText rewrites a tweet at a user-chosen manipulation ratio `r`,
//! highlighting the replaced tokens; every replacement is a stored
//! human-written token. This binary prints the rewrite at the GUI's three
//! ratios.
//!
//! ```text
//! cargo run -p cryptext-bench --bin exp_fig3_perturb
//! ```

use cryptext_bench::{build_db, build_platform};
use cryptext_core::{CrypText, PerturbParams};

fn main() {
    let platform = build_platform(6_000, 33);
    let cx = CrypText::new(build_db(&platform));

    let tweet = "the democrats and republicans keep fighting about the vaccine mandate \
                 while people struggle with depression";
    println!("# Figure 3 — Perturbation demo");
    println!();
    println!("original: {tweet}");
    println!();
    for ratio in [0.15, 0.25, 0.50] {
        let out = cx
            .perturb(tweet, PerturbParams::with_ratio(ratio).seeded(7))
            .expect("perturb");
        // Bracket the replacements, Fig. 3 highlight style.
        let mut highlighted = out.text.clone();
        for r in &out.replacements {
            highlighted = highlighted.replace(&r.replacement, &format!("[{}]", r.replacement));
        }
        println!("r = {:>3.0}% → {highlighted}", ratio * 100.0);
        for r in &out.replacements {
            println!("           {} → {}", r.original, r.replacement);
        }
        println!(
            "           ({} replaced, {} sampled tokens had no stored perturbation)",
            out.replacements.len(),
            out.misses
        );
        println!();
    }
    println!(
        "Every replacement above is a raw token observed in the simulated \
         human-written feed (count > 0 in the database) — the paper's \
         'guaranteed to be observable in human-written texts' property."
    );
}
