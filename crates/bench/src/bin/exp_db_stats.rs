//! Experiment S1 — database scale statistics (§I / §III-A claims).
//!
//! The paper's production database holds "over 2M human-written tokens …
//! categorized into over 400K unique phonetic sounds" (a ≈5:1
//! token-per-sound ratio). We reproduce the curation pipeline at laptop
//! scale (the generator is the corpus substitute) and report the same
//! shape metrics: unique tokens, unique sounds per level, the ratio, and
//! the heaviest buckets.
//!
//! ```text
//! cargo run --release -p cryptext-bench --bin exp_db_stats
//! ```

use cryptext_bench::row;
use cryptext_core::TokenDatabase;
use cryptext_corpus::datasets;

fn main() {
    // The curation mix: rumor + hate speech + cyberbullying corpora.
    let corpora = datasets::curation_mix(2023, 8_000);
    let mut db = TokenDatabase::with_lexicon();
    let mut docs = 0usize;
    for corpus in &corpora {
        for doc in &corpus.docs {
            db.ingest_text(&doc.text);
            docs += 1;
        }
    }
    let stats = db.stats();

    println!("# Database scale statistics (paper: >2M tokens, >400K sounds)");
    println!();
    println!("Curated from {docs} synthetic documents (3 corpora).");
    println!();
    println!("| metric | value |");
    println!("|--------|-------|");
    println!(
        "{}",
        row(&["unique tokens".into(), stats.unique_tokens.to_string()])
    );
    println!(
        "{}",
        row(&[
            "total occurrences".into(),
            stats.total_occurrences.to_string()
        ])
    );
    println!(
        "{}",
        row(&["dictionary tokens".into(), stats.english_tokens.to_string()])
    );
    for k in 0..=2 {
        println!(
            "{}",
            row(&[
                format!("unique sounds H_{k}"),
                stats.unique_sounds[k].to_string()
            ])
        );
    }
    let ratio = stats.unique_tokens as f64 / stats.unique_sounds[1] as f64;
    println!(
        "{}",
        row(&["tokens per H_1 sound".into(), format!("{ratio:.2}")])
    );
    println!();

    // Heaviest H_1 buckets — where perturbation families live.
    let mut view = db.hashmap_view(1).expect("valid level");
    view.sort_by_key(|(_, tokens)| std::cmp::Reverse(tokens.len()));
    println!("## Heaviest H_1 buckets");
    println!();
    println!("| code | size | sample tokens |");
    println!("|------|------|---------------|");
    for (code, tokens) in view.iter().take(10) {
        let sample: Vec<&str> = tokens.iter().take(6).map(|s| s.as_str()).collect();
        println!(
            "{}",
            row(&[code.clone(), tokens.len().to_string(), sample.join(", ")])
        );
    }
    println!();
    println!(
        "Paper-scale comparison: production CrypText reports ≈5 tokens per \
         sound (2M / 400K); the synthetic curation reproduces the same \
         many-tokens-per-sound skew at reduced scale."
    );
}
