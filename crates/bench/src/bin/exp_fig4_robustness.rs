//! Experiment F4 — **Figure 4**: accuracy of NLP "APIs" on texts perturbed
//! by CrypText.
//!
//! The paper stress-tests three Google NLP APIs (Perspective toxicity,
//! sentiment analysis, text categorization) with human-written
//! perturbations at manipulation ratios r ∈ {0, 15, 25, 50}% and reports a
//! monotone accuracy decline (Perspective loses ≈10 points at r = 25%).
//!
//! Here the APIs are substituted by locally-trained bag-of-words
//! classifiers (clean training data), stressed with the same Perturbation
//! engine, and compared against the machine-generated baselines — plus the
//! normalization-recovery ablation (§III-C use case: de-noising inputs).
//!
//! ```text
//! cargo run --release -p cryptext-bench --bin exp_fig4_robustness
//! ```

use cryptext_attacks::{perturb_text, DeepWordBug, TextBugger, TokenPerturber, Viper};
use cryptext_bench::{build_db, build_platform, pct, row};
use cryptext_common::SplitMix64;
use cryptext_core::{CrypText, NormalizeParams, PerturbParams};
use cryptext_corpus::{generator, CorpusConfig};
use cryptext_ml::{accuracy, train_test_split, Classifier, Example, NaiveBayes};

const RATIOS: [f64; 4] = [0.0, 0.15, 0.25, 0.50];

struct Task {
    #[allow(dead_code)]
    name: &'static str,
    model: NaiveBayes,
    test: Vec<Example>,
}

fn main() {
    // Clean labelled corpus for the three tasks (perturbation disabled —
    // the APIs were trained on clean text).
    let clean = generator::generate(CorpusConfig {
        n_docs: 4_000,
        seed: 1_234,
        perturb_prob_negative: 0.0,
        perturb_prob_positive: 0.0,
        secondary_perturb_prob: 0.0,
        ..CorpusConfig::default()
    });

    let tasks: Vec<Task> = [
        ("toxicity", 2usize),
        ("sentiment", 2usize),
        ("categories", 5usize),
    ]
    .into_iter()
    .map(|(name, classes)| {
        let examples: Vec<Example> = clean
            .docs
            .iter()
            .map(|d| {
                let label = match name {
                    "toxicity" => usize::from(d.toxic),
                    "sentiment" => d.sentiment.class_index(),
                    _ => d.topic.class_index(),
                };
                Example::new(d.text.clone(), label)
            })
            .collect();
        let (train, test) = train_test_split(&examples, 0.3, 9);
        Task {
            name,
            model: NaiveBayes::train(&train, classes, 1.0),
            test,
        }
    })
    .collect();

    // The CrypText system (database of wild human perturbations).
    let platform = build_platform(6_000, 55);
    let cx = CrypText::new(build_db(&platform));

    println!("# Figure 4 — accuracy under CrypText human-written perturbation");
    println!();
    println!("| r | toxicity | sentiment | categories |");
    println!("|---|----------|-----------|------------|");
    let mut cryptext_acc: Vec<Vec<f64>> = Vec::new();
    for (ri, &ratio) in RATIOS.iter().enumerate() {
        let mut accs = Vec::new();
        for task in &tasks {
            let y_true: Vec<usize> = task.test.iter().map(|e| e.label).collect();
            let y_pred: Vec<usize> = task
                .test
                .iter()
                .enumerate()
                .map(|(i, e)| {
                    let out = cx
                        .perturb(
                            &e.text,
                            PerturbParams::with_ratio(ratio).seeded((ri * 100_000 + i) as u64),
                        )
                        .expect("perturb");
                    task.model.predict(&out.text)
                })
                .collect();
            accs.push(accuracy(&y_true, &y_pred));
        }
        println!(
            "{}",
            row(&[
                format!("{:.0}%", ratio * 100.0),
                pct(accs[0]),
                pct(accs[1]),
                pct(accs[2])
            ])
        );
        cryptext_acc.push(accs);
    }
    let drop25 = (cryptext_acc[0][0] - cryptext_acc[2][0]) * 100.0;
    println!();
    println!(
        "Toxicity drop at r = 25%: {:.1} points (paper: ≈10 points for Perspective).",
        drop25
    );

    // Machine-generated baselines at the same ratios (toxicity task).
    println!();
    println!("## Baseline attacks (toxicity accuracy)");
    println!();
    println!("| r | cryptext (human) | textbugger | viper | deepwordbug |");
    println!("|---|------------------|------------|-------|-------------|");
    let baselines: Vec<(&str, Box<dyn TokenPerturber>)> = vec![
        ("textbugger", Box::new(TextBugger)),
        ("viper", Box::new(Viper::default())),
        ("deepwordbug", Box::new(DeepWordBug::default())),
    ];
    let tox = &tasks[0];
    let y_true: Vec<usize> = tox.test.iter().map(|e| e.label).collect();
    for (ri, &ratio) in RATIOS.iter().enumerate() {
        let mut cells = vec![format!("{:.0}%", ratio * 100.0), pct(cryptext_acc[ri][0])];
        for (_, attack) in &baselines {
            let y_pred: Vec<usize> = tox
                .test
                .iter()
                .enumerate()
                .map(|(i, e)| {
                    let mut rng = SplitMix64::new((ri * 100_000 + i) as u64);
                    let out = perturb_text(attack.as_ref(), &e.text, ratio, &mut rng);
                    tox.model.predict(&out.text)
                })
                .collect();
            cells.push(pct(accuracy(&y_true, &y_pred)));
        }
        println!("{}", row(&cells));
    }

    // Normalization recovery (§III-C use case): de-noise then re-classify.
    println!();
    println!("## Normalization recovery (toxicity accuracy at each r)");
    println!();
    println!("| r | perturbed | normalized |");
    println!("|---|-----------|------------|");
    for (ri, &ratio) in RATIOS.iter().enumerate() {
        let y_pred: Vec<usize> = tox
            .test
            .iter()
            .enumerate()
            .map(|(i, e)| {
                let out = cx
                    .perturb(
                        &e.text,
                        PerturbParams::with_ratio(ratio).seeded((ri * 100_000 + i) as u64),
                    )
                    .expect("perturb");
                let normalized = cx
                    .normalize(&out.text, NormalizeParams::default())
                    .expect("normalize");
                tox.model.predict(&normalized.text)
            })
            .collect();
        println!(
            "{}",
            row(&[
                format!("{:.0}%", ratio * 100.0),
                pct(cryptext_acc[ri][0]),
                pct(accuracy(&y_true, &y_pred)),
            ])
        );
    }
}
