//! Experiment F2 — **Figure 2**: the Normalization function.
//!
//! The GUI shows the normalized text with corrected tokens highlighted and
//! a per-token popup (original, replacement, score, alternatives). This
//! binary prints the same content, plus an aggregate accuracy measurement
//! over gold perturbation pairs from the simulated feed.
//!
//! ```text
//! cargo run -p cryptext-bench --bin exp_fig2_normalize
//! ```

use cryptext_bench::{build_db, build_platform, pct};
use cryptext_core::{CrypText, NormalizeParams};

fn main() {
    let platform = build_platform(6_000, 77);
    let cx = CrypText::new(build_db(&platform));

    println!("# Figure 2 — Normalization demo");
    println!();
    for input in [
        "Biden belongs to the demokRATs",
        "the vacc1ne mandate is a scam",
        "thinking about suic1de again",
        "those repubLIEcans keep lying",
        "the mus-lim community pushed back",
    ] {
        let out = cx
            .normalize(input, NormalizeParams::default())
            .expect("normalize");
        println!("input : {input}");
        println!("output: {}", out.text);
        for c in &out.corrections {
            let alts: Vec<String> = c
                .candidates
                .iter()
                .take(3)
                .map(|cand| format!("{} ({:.2})", cand.word, cand.score))
                .collect();
            println!(
                "  [{}] → [{}]  score {:.2}; candidates: {}",
                c.original,
                c.replacement,
                c.score,
                alts.join(", ")
            );
        }
        println!();
    }

    // Aggregate: how often does normalization recover the gold original?
    let mut total = 0usize;
    let mut recovered = 0usize;
    for post in platform.posts().iter().take(1_500) {
        if post.perturbations.is_empty() {
            continue;
        }
        let out = cx
            .normalize(&post.text, NormalizeParams::default())
            .expect("normalize");
        for rec in &post.perturbations {
            total += 1;
            let fixed = out.corrections.iter().any(|c| {
                c.original == rec.perturbed && c.replacement.eq_ignore_ascii_case(&rec.original)
            });
            // Emphasis perturbations are already dictionary words after
            // case folding; treat "left unchanged" as recovered for them.
            let case_only = rec.perturbed.eq_ignore_ascii_case(&rec.original);
            if fixed || case_only {
                recovered += 1;
            }
        }
    }
    println!(
        "Gold-pair recovery over the feed: {recovered}/{total} = {}",
        pct(recovered as f64 / total.max(1) as f64)
    );
}
