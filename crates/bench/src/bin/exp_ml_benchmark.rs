//! Experiment B1 — the §III-D "ML benchmark page".
//!
//! The paper: "CrypText also dedicates an ML benchmark page that
//! frequently updates our evaluation of publicly available NLP APIs and
//! models on noisy human-written texts." This binary produces that
//! leaderboard for the locally-available model zoo (Naive Bayes and
//! logistic regression per task), scoring each on clean text, CrypText
//! human perturbations (r = 25%), and the machine baselines.
//!
//! ```text
//! cargo run --release -p cryptext-bench --bin exp_ml_benchmark
//! ```

use cryptext_attacks::{perturb_text, TextBugger, Viper};
use cryptext_bench::{build_db, build_platform, pct, row};
use cryptext_common::SplitMix64;
use cryptext_core::{CrypText, PerturbParams};
use cryptext_corpus::{generator, CorpusConfig};
use cryptext_ml::{
    accuracy, f1_macro, train_test_split, Classifier, Example, LogisticRegression, NaiveBayes,
};

const RATIO: f64 = 0.25;

fn eval(
    model: &dyn Classifier,
    test: &[Example],
    transform: impl Fn(usize, &str) -> String,
) -> (f64, f64) {
    let y_true: Vec<usize> = test.iter().map(|e| e.label).collect();
    let y_pred: Vec<usize> = test
        .iter()
        .enumerate()
        .map(|(i, e)| model.predict(&transform(i, &e.text)))
        .collect();
    (
        accuracy(&y_true, &y_pred),
        f1_macro(model.num_classes(), &y_true, &y_pred),
    )
}

fn main() {
    let clean = generator::generate(CorpusConfig {
        n_docs: 3_000,
        seed: 88,
        perturb_prob_negative: 0.0,
        perturb_prob_positive: 0.0,
        secondary_perturb_prob: 0.0,
        ..CorpusConfig::default()
    });
    let platform = build_platform(6_000, 89);
    let cx = CrypText::new(build_db(&platform));

    println!("# §III-D — ML benchmark page (noisy-text leaderboard, r = 25%)");
    println!();
    println!("| task | model | clean acc | cryptext acc | textbugger acc | viper acc | clean F1 | cryptext F1 |");
    println!("|------|-------|-----------|--------------|----------------|-----------|----------|-------------|");

    for (task, classes) in [("toxicity", 2usize), ("sentiment", 2), ("categories", 5)] {
        let examples: Vec<Example> = clean
            .docs
            .iter()
            .map(|d| {
                let label = match task {
                    "toxicity" => usize::from(d.toxic),
                    "sentiment" => d.sentiment.class_index(),
                    _ => d.topic.class_index(),
                };
                Example::new(d.text.clone(), label)
            })
            .collect();
        let (train, test) = train_test_split(&examples, 0.3, 5);

        let models: Vec<(&str, Box<dyn Classifier>)> = vec![
            (
                "naive-bayes",
                Box::new(NaiveBayes::train(&train, classes, 1.0)),
            ),
            (
                "logreg",
                Box::new(LogisticRegression::train(
                    &train,
                    classes,
                    cryptext_ml::logreg::LogRegConfig::default(),
                )),
            ),
        ];
        for (name, model) in &models {
            let (clean_acc, clean_f1) = eval(model.as_ref(), &test, |_, t| t.to_string());
            let (cx_acc, cx_f1) = eval(model.as_ref(), &test, |i, t| {
                cx.perturb(t, PerturbParams::with_ratio(RATIO).seeded(i as u64))
                    .expect("perturb")
                    .text
            });
            let (tb_acc, _) = eval(model.as_ref(), &test, |i, t| {
                let mut rng = SplitMix64::new(i as u64);
                perturb_text(&TextBugger, t, RATIO, &mut rng).text
            });
            let (vp_acc, _) = eval(model.as_ref(), &test, |i, t| {
                let mut rng = SplitMix64::new(i as u64);
                perturb_text(&Viper::default(), t, RATIO, &mut rng).text
            });
            println!(
                "{}",
                row(&[
                    task.to_string(),
                    name.to_string(),
                    pct(clean_acc),
                    pct(cx_acc),
                    pct(tb_acc),
                    pct(vp_acc),
                    format!("{clean_f1:.3}"),
                    format!("{cx_f1:.3}"),
                ])
            );
        }
    }
    println!();
    println!(
        "Leaderboard semantics: lower perturbed accuracy = less robust to \
         noisy human text. The page regenerates deterministically as the \
         database grows (re-run after further crawling)."
    );
}
