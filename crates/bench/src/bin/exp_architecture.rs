//! Experiment F5 — **Figure 5**: the architecture, exercised end to end.
//!
//! GUI/API → Look Up/Normalize/Perturb → MongoDB (embedded docstore) →
//! Redis (TTL+LRU cache) → Twitter crawler. This binary runs the whole
//! pipeline: simulate a feed, crawl it into the token database, persist
//! through the document store (WAL + snapshot), recover, stand the
//! authenticated service up, and report cache effectiveness.
//!
//! ```text
//! cargo run --release -p cryptext-bench --bin exp_architecture
//! ```

use cryptext_bench::{build_platform, pct};
use cryptext_core::ingest::Crawler;
use cryptext_core::service::{CryptextService, ServiceConfig};
use cryptext_core::{CrypText, LookupParams, TokenDatabase};
use cryptext_docstore::{Database, DbOptions};

fn main() {
    let dir = std::env::temp_dir().join(format!("cryptext-arch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    println!("# Figure 5 — architecture pipeline");
    println!();

    // 1. Crawler ingests the stream (Twitter stream API substitute).
    let platform = build_platform(4_000, 99);
    let mut db = TokenDatabase::with_lexicon();
    let mut crawler = Crawler::new();
    let mut batches = 0;
    loop {
        let stats = crawler.run_once(&platform, &mut db, 500);
        if stats.posts == 0 {
            break;
        }
        batches += 1;
    }
    let life = crawler.lifetime_stats();
    println!(
        "crawler: {} posts in {batches} batches → {} token occurrences, {} novel tokens",
        life.posts, life.tokens, life.new_tokens
    );

    // 2. Persist through the embedded document store (MongoDB substitute).
    let store = Database::open(&dir, DbOptions::default()).expect("open store");
    db.persist_to(&store, "tokens").expect("persist");
    store.checkpoint().expect("checkpoint");
    let on_disk = store.len("tokens").expect("len");
    println!("docstore: {on_disk} token documents persisted (WAL + snapshot, checkpointed)");

    // 3. Crash-recover: reopen and rebuild the in-memory database.
    drop(store);
    let store = Database::open(&dir, DbOptions::default()).expect("reopen store");
    let recovered = TokenDatabase::load_from(&store, "tokens").expect("load");
    assert_eq!(recovered.stats().unique_tokens, db.stats().unique_tokens);
    println!(
        "recovery: reopened store and rebuilt database — {} tokens, {} H_1 sounds",
        recovered.stats().unique_tokens,
        recovered.stats().unique_sounds[1]
    );

    // 4. Public API facade with auth + rate limit + cache (Redis
    //    substitute).
    let service = CryptextService::new(
        CrypText::new(recovered),
        ServiceConfig::default(),
        cryptext_common::system_clock(),
    );
    let token = service.issue_token("demo");
    let queries = [
        "democrats",
        "republicans",
        "vaccine",
        "suicide",
        "depression",
    ];
    // Two passes: the second should be served by the cache.
    for _ in 0..2 {
        for q in queries {
            let _ = service
                .look_up(&token, q, LookupParams::paper_default())
                .expect("lookup");
        }
    }
    let cache = service.cache_stats();
    println!(
        "service: {} lookups → cache hit rate {} ({} hits / {} misses)",
        cache.hits + cache.misses,
        pct(cache.hit_rate()),
        cache.hits,
        cache.misses
    );
    assert!(cache.hit_rate() >= 0.5, "second pass fully cached");

    let _ = std::fs::remove_dir_all(&dir);
    println!();
    println!(
        "pipeline complete: crawler → tokenDB → docstore(WAL/snapshot) → recovery → API(cache)."
    );
}
