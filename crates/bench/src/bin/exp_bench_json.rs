//! Experiment B0 — **performance trajectory**: machine-readable lookup /
//! normalize throughput over a seeded corpus, written to
//! `BENCH_lookup.json` at the workspace root so successive PRs have
//! comparable numbers (same seed, same query mix, same machine class).
//!
//! Reports, per engine path:
//!
//! * `queries_per_sec` — cold Look Up throughput (no service cache),
//! * `p50_us` / `p99_us` — per-query latency quantiles in microseconds,
//! * the optimized-over-naive speedup ratio for the paper-default
//!   `k = 1, d = 3` workload,
//! * database shape (tokens, sounds, occurrences) and ingest timing
//!   (sequential vs parallel batch).
//!
//! ```text
//! cargo run --release -p cryptext-bench --bin exp_bench_json
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use cryptext_bench::{build_db, build_platform};
use cryptext_core::{
    look_up_naive, look_up_with, CrypText, LookupParams, LookupScratch, NormalizeParams,
    TokenDatabase,
};

const N_POSTS: usize = 4_000;
const SEED: u64 = 7;
const WARMUP_ROUNDS: usize = 4;
const MEASURE_ROUNDS: usize = 40;

struct Measured {
    queries_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
    total_hits: usize,
}

/// Run `f` once per query over `rounds` rounds; returns per-call quantiles.
fn measure(queries: &[&str], rounds: usize, mut f: impl FnMut(&str) -> usize) -> Measured {
    let mut samples_us: Vec<f64> = Vec::with_capacity(queries.len() * rounds);
    let mut total_hits = 0;
    let wall = Instant::now();
    for _ in 0..rounds {
        for q in queries {
            let start = Instant::now();
            total_hits += std::hint::black_box(f(q));
            samples_us.push(start.elapsed().as_nanos() as f64 / 1e3);
        }
    }
    let wall_s = wall.elapsed().as_secs_f64();
    samples_us.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let pick = |q: f64| samples_us[((samples_us.len() - 1) as f64 * q).round() as usize];
    Measured {
        queries_per_sec: samples_us.len() as f64 / wall_s,
        p50_us: pick(0.5),
        p99_us: pick(0.99),
        total_hits,
    }
}

fn json_block(out: &mut String, name: &str, m: &Measured, last: bool) {
    let _ = writeln!(out, "    \"{name}\": {{");
    let _ = writeln!(out, "      \"queries_per_sec\": {:.1},", m.queries_per_sec);
    let _ = writeln!(out, "      \"p50_us\": {:.2},", m.p50_us);
    let _ = writeln!(out, "      \"p99_us\": {:.2},", m.p99_us);
    let _ = writeln!(out, "      \"total_hits\": {}", m.total_hits);
    let _ = writeln!(out, "    }}{}", if last { "" } else { "," });
}

fn main() {
    let platform = build_platform(N_POSTS, SEED);
    let texts: Vec<String> = platform.posts().iter().map(|p| p.text.clone()).collect();

    // Ingest timing: the same corpus sequentially and in one parallel batch.
    let ingest_seq_start = Instant::now();
    let mut db_seq = TokenDatabase::with_lexicon();
    for t in &texts {
        db_seq.ingest_text(t);
    }
    let ingest_seq_ms = ingest_seq_start.elapsed().as_secs_f64() * 1e3;

    let ingest_par_start = Instant::now();
    let mut db_par = TokenDatabase::with_lexicon();
    db_par.ingest_texts(&texts);
    let ingest_par_ms = ingest_par_start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(db_seq.stats(), db_par.stats(), "parallel ingest must agree");

    let db = build_db(&platform);
    let stats = db.stats();

    // A query mix of clean words, observed perturbations, and misses.
    let queries: Vec<&str> = [
        "democrats",
        "republicans",
        "vaccine",
        "suicide",
        "muslim",
        "depression",
        "vacc1ne",
        "the",
        "demokrats",
        "zzzmiss",
        "lesbian",
        "dirty",
    ]
    .into_iter()
    .collect();
    let params = LookupParams::paper_default();

    let mut scratch = LookupScratch::new();
    for _ in 0..WARMUP_ROUNDS {
        for q in &queries {
            let _ = look_up_with(&db, q, params, &mut scratch).unwrap();
            let _ = look_up_naive(&db, q, params).unwrap();
        }
    }

    let optimized = measure(&queries, MEASURE_ROUNDS, |q| {
        look_up_with(&db, q, params, &mut scratch).unwrap().len()
    });
    let naive = measure(&queries, MEASURE_ROUNDS, |q| {
        look_up_naive(&db, q, params).unwrap().len()
    });
    assert_eq!(
        optimized.total_hits, naive.total_hits,
        "engines must retrieve identical result sets"
    );
    let speedup = naive.p50_us / optimized.p50_us;

    // Normalization throughput (drives Look Up per out-of-dictionary word).
    let cx = CrypText::new(db);
    let norm_texts: Vec<&str> = texts.iter().take(200).map(|s| s.as_str()).collect();
    let norm = measure(&norm_texts, 2, |t| {
        cx.normalize(t, NormalizeParams::default())
            .unwrap()
            .corrections
            .len()
    });

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"lookup\",");
    let _ = writeln!(
        out,
        "  \"corpus\": {{ \"posts\": {N_POSTS}, \"seed\": {SEED} }},"
    );
    let _ = writeln!(
        out,
        "  \"db\": {{ \"unique_tokens\": {}, \"sounds_k1\": {}, \"total_occurrences\": {} }},",
        stats.unique_tokens, stats.unique_sounds[1], stats.total_occurrences
    );
    let _ = writeln!(
        out,
        "  \"ingest\": {{ \"sequential_ms\": {ingest_seq_ms:.1}, \"parallel_batch_ms\": {ingest_par_ms:.1}, \"threads\": {} }},",
        cryptext_common::par::max_threads()
    );
    let _ = writeln!(out, "  \"lookup_k1_d3\": {{");
    json_block(&mut out, "optimized", &optimized, false);
    json_block(&mut out, "naive", &naive, false);
    let _ = writeln!(
        out,
        "    \"speedup_p50_naive_over_optimized\": {speedup:.2}"
    );
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"normalize_default\": {{");
    let _ = writeln!(out, "    \"texts_per_sec\": {:.1},", norm.queries_per_sec);
    let _ = writeln!(out, "    \"p50_us\": {:.2},", norm.p50_us);
    let _ = writeln!(out, "    \"p99_us\": {:.2}", norm.p99_us);
    let _ = writeln!(out, "  }}");
    out.push_str("}\n");

    std::fs::write("BENCH_lookup.json", &out).expect("write BENCH_lookup.json");
    print!("{out}");
    eprintln!(
        "lookup p50: optimized {:.2}µs vs naive {:.2}µs → {speedup:.2}x",
        optimized.p50_us, naive.p50_us
    );
}
