//! Experiment B0 — **performance trajectory**: machine-readable lookup /
//! normalize / ingest throughput over a seeded corpus, written to
//! `BENCH_lookup.json`, `BENCH_normalize.json` and `BENCH_ingest.json` at
//! the workspace root so successive PRs have comparable numbers (same
//! seed, same query mix, same machine class).
//!
//! Reports, per engine path:
//!
//! * `queries_per_sec` / `texts_per_sec` — cold throughput (no service
//!   cache),
//! * `p50_us` / `p99_us` — per-call latency quantiles in microseconds,
//! * the optimized-over-naive speedup ratio for the paper-default
//!   workloads (`k = 1, d = 3` Look Up; default-parameter Normalization),
//! * result-shape invariants (`total_hits`, `corrections_total`) that must
//!   never drift — the optimized engines are byte-identical rewrites,
//! * database shape (tokens, sounds, occurrences) and ingest timing
//!   (sequential vs parallel batch),
//! * the durable streaming-ingest dimension (`BENCH_ingest.json`): the
//!   per-batch delta-log append latency vs the full `persist_to` it
//!   replaces as the durability point, compaction wall time, and the
//!   recovered database shape (pinned by `--check`),
//! * the gateway dimension (`BENCH_service.json`): the admission-control
//!   overhead p50 (gateway Look Up vs the direct service call), the
//!   shed split of a latch-choreographed 10× admission storm, and the
//!   coalesce hit rate of a duplicate-lookup wave. The storm/wave counts
//!   are deterministic by construction and pinned by `--check`; the
//!   overhead numbers are machine-dependent and informational,
//! * the tiered result-cache dimension (`BENCH_cache.json`): the
//!   hit/miss latency split of the service's normalize caches — the
//!   whole-text result cache over the cross-text candidate memo —
//!   (uncached engine vs pure warm hits) and a Zipf-replay workload with
//!   a mid-stream generation bump. The hit/miss/invalidation counts are
//!   a pure function of the seeded replay and pinned by `--check`, which
//!   additionally gates two wide-margin latency invariants: warm-hit p50
//!   ≤ 1/3 of the uncached p50, and replay p99 below the uncached p99,
//! * the HTTP wire dimension (`BENCH_http.json`): the same Look Up mix
//!   over a real loopback socket (one keep-alive connection through
//!   `cryptext-http`) vs the direct `Gateway` call, so the wire tax —
//!   parse + route + serialize + two kernel crossings — is measured
//!   apart from the layering tax. Result shapes (wire hits == direct
//!   hits) and the served-request count are deterministic and pinned by
//!   `--check`; the latency numbers are informational.
//!
//! ```text
//! cargo run --release -p cryptext-bench --bin exp_bench_json
//! ```
//!
//! With `--check`, nothing is rewritten: the invariant fields are
//! recomputed and compared against the committed JSON files, exiting
//! non-zero on drift. CI runs this as a bench smoke test, so a change that
//! silently alters retrieval or correction results fails the build even
//! when every latency number looks plausible. `--check` additionally
//! gates the metrics hot path: attaching the per-stage instrument bundle
//! must keep the lookup/normalize p50 within 5% of the detached/pinned
//! reference, and after the loopback run the registry's wire-layer
//! totals must equal the served-request count the suite pins.

use std::fmt::Write as _;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use cryptext_bench::{build_db, build_platform};
use cryptext_common::{Error, SimClock};
use cryptext_core::durable::{DurableOptions, DurableTokenStore};
use cryptext_core::lookup::LookupHit;
use cryptext_core::service::{CryptextService, ServiceConfig};
use cryptext_core::{
    look_up_naive, look_up_with, CrypText, EncodedQuery, LookupParams, LookupScratch,
    NormalizeParams, NormalizeScratch, Normalizer, ShardedTokenDatabase, StageMetrics,
    TokenDatabase,
};
use cryptext_docstore::Database;
use cryptext_gateway::{
    CallOptions, Gateway, GatewayConfig, RouteBudget, RouteClass, SingleFlight,
};
use cryptext_http::{HttpConfig, HttpServer};

const N_POSTS: usize = 4_000;
const SEED: u64 = 7;
const WARMUP_ROUNDS: usize = 4;
const MEASURE_ROUNDS: usize = 40;
const NORM_TEXTS: usize = 200;
const NORM_ROUNDS: usize = 4;
/// The shard counts of the `shards` dimension: the same Look Up workload
/// measured over the consistent-hash sharded backend at each count.
/// Count 1 doubles as the trait-indirection regression check against the
/// plain `optimized` block.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// The ingest dimension's workload: this many one-post batches streamed
/// through a durable store, compacting every [`COMPACT_EVERY`] batches.
const INGEST_BATCHES: usize = 2_000;
const COMPACT_EVERY: usize = 500;
/// The gateway storm: a lane of `STORM_BUDGET` (executing, queued)
/// capacity against [`STORM_REQUESTS`] simultaneous arrivals — 10× the
/// lane's total capacity of 4, so exactly 36 must shed.
const STORM_REQUESTS: usize = 40;
const STORM_BUDGET: (usize, usize) = (2, 2);
/// The duplicate wave: this many identical concurrent lookups must
/// coalesce to a single execution (one leader, the rest followers).
const WAVE_REQUESTS: usize = 8;
/// Rounds for the admission-overhead comparison (gateway vs direct).
const SERVICE_ROUNDS: usize = 40;
/// Rounds for the HTTP wire-overhead comparison (loopback socket vs
/// direct gateway call), over the same six-query mix.
const HTTP_ROUNDS: usize = 200;
/// The cache dimension's Zipf replay: [`CACHE_REPLAY`] normalize requests
/// drawn Zipf-style (exponent [`CACHE_ZIPF_S`]) from a pool of
/// [`CACHE_POOL`] distinct feed texts — hot texts repeat, the tail stays
/// cold — with one generation bump (cache flush) halfway through. The
/// small pool keeps the request-level hit rate above 99%, so the replay's
/// p99 lands on the hit path. Every fourth pool text carries the same
/// out-of-dictionary token, so its empty candidate list is shared
/// cross-text during the cold fills — the negative-cache path.
const CACHE_POOL: usize = 32;
const CACHE_REPLAY: usize = 10_000;
const CACHE_ZIPF_S: f64 = 1.1;

struct Measured {
    queries_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
    total_hits: usize,
}

/// Run `f` once per query over `rounds` rounds; returns per-call quantiles.
fn measure(queries: &[&str], rounds: usize, mut f: impl FnMut(&str) -> usize) -> Measured {
    let mut samples_us: Vec<f64> = Vec::with_capacity(queries.len() * rounds);
    let mut total_hits = 0;
    let wall = Instant::now();
    for _ in 0..rounds {
        for q in queries {
            let start = Instant::now();
            total_hits += std::hint::black_box(f(q));
            samples_us.push(start.elapsed().as_nanos() as f64 / 1e3);
        }
    }
    let wall_s = wall.elapsed().as_secs_f64();
    samples_us.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let pick = |q: f64| samples_us[((samples_us.len() - 1) as f64 * q).round() as usize];
    Measured {
        queries_per_sec: samples_us.len() as f64 / wall_s,
        p50_us: pick(0.5),
        p99_us: pick(0.99),
        total_hits,
    }
}

fn json_block(out: &mut String, name: &str, m: &Measured, hits_key: &str, last: bool) {
    let _ = writeln!(out, "    \"{name}\": {{");
    let _ = writeln!(out, "      \"queries_per_sec\": {:.1},", m.queries_per_sec);
    let _ = writeln!(out, "      \"p50_us\": {:.2},", m.p50_us);
    let _ = writeln!(out, "      \"p99_us\": {:.2},", m.p99_us);
    let _ = writeln!(out, "      \"{hits_key}\": {}", m.total_hits);
    let _ = writeln!(out, "    }}{}", if last { "" } else { "," });
}

/// Every integer value attached to `key` in (our own, flat) JSON output.
fn extract_ints(json: &str, key: &str) -> Vec<u64> {
    let needle = format!("\"{key}\":");
    json.lines()
        .filter_map(|line| {
            let idx = line.find(&needle)?;
            let rest = line[idx + needle.len()..].trim();
            let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
            digits.parse().ok()
        })
        .collect()
}

/// Every numeric value attached to `key` in (our own, flat) JSON output,
/// parsed as `f64` — the float sibling of [`extract_ints`] for the
/// latency-pin fields written with `{:.2}`.
fn extract_floats(json: &str, key: &str) -> Vec<f64> {
    let needle = format!("\"{key}\":");
    json.lines()
        .filter_map(|line| {
            let idx = line.find(&needle)?;
            let rest = line[idx + needle.len()..].trim();
            let num: String = rest
                .chars()
                .take_while(|c| c.is_ascii_digit() || *c == '.')
                .collect();
            num.parse().ok()
        })
        .collect()
}

/// The deterministic result-shape invariants of one measurement round.
struct Invariants {
    hits_per_round: usize,
    corrections_per_round: usize,
}

fn compute_invariants(
    db: &TokenDatabase,
    cx: &CrypText,
    queries: &[&str],
    norm_texts: &[&str],
) -> Invariants {
    let mut scratch = LookupScratch::new();
    let params = LookupParams::paper_default();
    let hits_per_round = queries
        .iter()
        .map(|q| look_up_with(db, q, params, &mut scratch).unwrap().len())
        .sum();
    let corrections_per_round = norm_texts
        .iter()
        .map(|t| {
            cx.normalize(t, NormalizeParams::default())
                .unwrap()
                .corrections
                .len()
        })
        .sum();
    Invariants {
        hits_per_round,
        corrections_per_round,
    }
}

/// Deterministic Bloom-routing statistics of the query mix over one
/// sharded store: `(shard_walks, skipped_shard_walks)` — how many
/// per-shard walks the mix would issue without routing, and how many of
/// those the per-shard code summaries skip. Pure function of the (seeded)
/// corpus, so `--check` recomputes and pins it.
fn skip_stats(wide: &ShardedTokenDatabase, queries: &[&str]) -> (usize, usize) {
    let params = LookupParams::paper_default();
    let mut query = EncodedQuery::new();
    let mut walks = 0usize;
    let mut skipped = 0usize;
    for q in queries {
        query.encode(q, params.k).expect("valid level");
        walks += cryptext_core::TokenStore::num_shards(wide);
        skipped += wide.skipped_shards(&query);
    }
    (walks, skipped)
}

/// The sharded-backend half of the bench smoke: for every entry of
/// [`SHARD_COUNTS`], the sharded store must retrieve exactly the same hit
/// count as the single instance — the byte-identical contract, recomputed
/// live in CI rather than trusted from the committed file — and the
/// committed skip-rate fields (`shard_walks` / `skipped_shard_walks`) must
/// match the routing recomputed over the live Bloom summaries.
fn check_sharded(
    db: &TokenDatabase,
    queries: &[&str],
    expected_hits: usize,
    lookup_json: &str,
) -> Result<(), String> {
    let params = LookupParams::paper_default();
    let committed_walks = extract_ints(lookup_json, "shard_walks");
    let committed_skipped = extract_ints(lookup_json, "skipped_shard_walks");
    if committed_walks.len() != SHARD_COUNTS.len() || committed_skipped.len() != SHARD_COUNTS.len()
    {
        return Err(format!(
            "BENCH_lookup.json shards entries must each carry shard_walks + \
             skipped_shard_walks ({} and {} found, want {})",
            committed_walks.len(),
            committed_skipped.len(),
            SHARD_COUNTS.len()
        ));
    }
    for (i, n) in SHARD_COUNTS.into_iter().enumerate() {
        let wide = ShardedTokenDatabase::from_database(db, n);
        let mut scratch = LookupScratch::new();
        let hits: usize = queries
            .iter()
            .map(|q| look_up_with(&wide, q, params, &mut scratch).unwrap().len())
            .sum();
        if hits != expected_hits {
            return Err(format!(
                "sharded backend ({n} shards) retrieved {hits} hits, single instance {expected_hits}"
            ));
        }
        let (walks, skipped) = skip_stats(&wide, queries);
        if committed_walks[i] != walks as u64 || committed_skipped[i] != skipped as u64 {
            return Err(format!(
                "skip-rate drift at {n} shards: committed {}/{} walks skipped, recomputed {skipped}/{walks}",
                committed_skipped[i], committed_walks[i]
            ));
        }
    }
    Ok(())
}

/// The ingest dimension's invariants: the durable workload's final
/// database shape is a pure function of the seeded corpus, so `--check`
/// recomputes it through the ordinary in-memory path and pins the
/// committed `BENCH_ingest.json` fields against it.
fn check_ingest(texts: &[String]) -> Result<(), String> {
    let json = std::fs::read_to_string("BENCH_ingest.json")
        .map_err(|e| format!("read BENCH_ingest.json: {e}"))?;
    let n = INGEST_BATCHES.min(texts.len());
    let mut db = TokenDatabase::in_memory();
    for t in &texts[..n] {
        db.ingest_text(t);
    }
    let stats = db.stats();
    let checks = [
        ("batches", n as u64),
        ("unique_tokens", stats.unique_tokens as u64),
        ("total_occurrences", stats.total_occurrences),
        ("compactions", (n / COMPACT_EVERY) as u64),
        ("final_epoch", (n / COMPACT_EVERY) as u64),
    ];
    for (key, want) in checks {
        let got = extract_ints(&json, key);
        if got != vec![want] {
            return Err(format!(
                "BENCH_ingest.json {key} is {got:?}, expected [{want}]"
            ));
        }
    }
    Ok(())
}

/// One-shot gate: gateway request closures park on it so the overload
/// choreography can line up every request's admission state (executing,
/// queued, or shed) before letting any work finish. That staging is what
/// makes the storm/wave counts deterministic rather than racy.
struct Latch {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Latch {
    fn new() -> Arc<Self> {
        Arc::new(Latch {
            open: Mutex::new(false),
            cv: Condvar::new(),
        })
    }

    fn open(&self) {
        *self.open.lock().unwrap() = true;
        self.cv.notify_all();
    }

    fn wait(&self) {
        let start = Instant::now();
        let mut open = self.open.lock().unwrap();
        while !*open {
            assert!(
                start.elapsed() < Duration::from_secs(20),
                "bench latch never opened"
            );
            let (guard, _) = self
                .cv
                .wait_timeout(open, Duration::from_millis(2))
                .unwrap();
            open = guard;
        }
    }
}

/// Spin until `cond` holds; panics (failing the bench/check) on stall.
fn poll_until(what: &str, cond: impl Fn() -> bool) {
    let start = Instant::now();
    while !cond() {
        assert!(
            start.elapsed() < Duration::from_secs(20),
            "bench choreography stalled waiting for {what}"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// A small service on a frozen simulated clock for the gateway
/// dimension: deadlines never expire mid-choreography, and the tiny
/// fixed corpus keeps the admitted requests' work (and therefore the
/// measured overhead) about the gateway, not the database.
fn service_fixture() -> Arc<CryptextService<TokenDatabase>> {
    let mut db = TokenDatabase::in_memory();
    for text in [
        "the dirrty republicans",
        "thee dirty repubLIEcans",
        "the dirty republic@@ns",
        "vaccine vacc1ne vaxxine mandates",
        "democrats demokkkrats dem0crats",
    ] {
        db.ingest_text(text);
    }
    Arc::new(CryptextService::new(
        CrypText::new(db),
        ServiceConfig {
            rate_limit_per_minute: 1_000_000,
            ..ServiceConfig::default()
        },
        Arc::new(SimClock::new(0)),
    ))
}

/// The deterministic counts of the gateway choreography, pinned by
/// `--check`.
struct ServiceChoreography {
    storm_completed: usize,
    storm_shed: usize,
    wave_followers: u64,
    wave_executions: u64,
}

/// Run the 10× storm and the duplicate wave. Latches hold every request
/// in place until the target admission state is observed, so the splits
/// below are exact counts, not statistics.
fn run_service_choreography() -> ServiceChoreography {
    // Storm: lane capacity 4 (2 executing + 2 queued) vs 40 arrivals.
    let svc = service_fixture();
    let gw: Arc<Gateway<TokenDatabase>> = Arc::new(Gateway::new(
        Arc::clone(&svc),
        GatewayConfig {
            lookup: RouteBudget::new(STORM_BUDGET.0, STORM_BUDGET.1),
            ..GatewayConfig::default()
        },
    ));
    let auth = svc.issue_token("bench-storm");
    let direct = svc
        .look_up(&auth, "republicans", LookupParams::paper_default())
        .expect("direct storm lookup");

    let latch = Latch::new();
    let mut handles = Vec::new();
    for _ in 0..STORM_REQUESTS {
        let (gw, auth, latch) = (Arc::clone(&gw), auth.clone(), Arc::clone(&latch));
        handles.push(std::thread::spawn(move || {
            gw.call(
                RouteClass::Lookup,
                &auth,
                CallOptions::default(),
                move |svc, _| {
                    latch.wait();
                    svc.look_up_prechecked(
                        "republicans",
                        LookupParams::paper_default(),
                        &mut || None,
                    )
                },
            )
        }));
    }
    let capacity = STORM_BUDGET.0 + STORM_BUDGET.1;
    poll_until("storm saturation", || {
        let s = gw.stats();
        s.shed_queue_full == (STORM_REQUESTS - capacity) as u64
            && s.active_now == STORM_BUDGET.0
            && s.queued_now == STORM_BUDGET.1
    });
    latch.open();
    let (mut storm_completed, mut storm_shed) = (0, 0);
    for h in handles {
        match h.join().expect("storm thread") {
            Ok(hits) => {
                assert_eq!(
                    hits, direct,
                    "admitted storm result must match the direct call"
                );
                storm_completed += 1;
            }
            Err(Error::Overloaded { .. }) => storm_shed += 1,
            Err(e) => panic!("storm produced an unexpected error: {e}"),
        }
    }

    // Duplicate wave: identical concurrent lookups coalesce to one
    // execution; every caller gets the leader's exact bytes.
    let svc = service_fixture();
    let gw: Arc<Gateway<TokenDatabase>> =
        Arc::new(Gateway::new(Arc::clone(&svc), GatewayConfig::default()));
    let auth = svc.issue_token("bench-wave");
    let direct = svc
        .look_up(&auth, "democrats", LookupParams::paper_default())
        .expect("direct wave lookup");
    let flights: Arc<SingleFlight<Vec<LookupHit>>> = Arc::new(SingleFlight::new());
    let latch = Latch::new();
    let mut handles = Vec::new();
    for _ in 0..WAVE_REQUESTS {
        let (gw, auth, latch) = (Arc::clone(&gw), auth.clone(), Arc::clone(&latch));
        let flights = Arc::clone(&flights);
        handles.push(std::thread::spawn(move || {
            gw.call_coalesced(
                RouteClass::Lookup,
                0xBE5E7CE5,
                &auth,
                CallOptions::default(),
                &flights,
                move |svc, _| {
                    latch.wait();
                    svc.look_up_prechecked("democrats", LookupParams::paper_default(), &mut || None)
                },
            )
        }));
    }
    poll_until("wave coalescing", || {
        gw.stats().coalesced_followers == (WAVE_REQUESTS - 1) as u64
    });
    latch.open();
    for h in handles {
        let hits = h.join().expect("wave thread").expect("coalesced lookup");
        assert_eq!(hits, direct, "coalesced result must match the direct call");
    }
    let s = gw.stats();
    ServiceChoreography {
        storm_completed,
        storm_shed,
        wave_followers: s.coalesced_followers,
        wave_executions: s.executions,
    }
}

/// The gateway dimension's invariants: the choreography is deterministic
/// by construction, so `--check` re-runs it live — proving shed-not-
/// collapse and single-execution coalescing on the current build — and
/// pins the committed `BENCH_service.json` counts against the fresh run.
fn check_service() -> Result<(), String> {
    let json = std::fs::read_to_string("BENCH_service.json")
        .map_err(|e| format!("read BENCH_service.json: {e}"))?;
    let chor = run_service_choreography();
    let capacity = STORM_BUDGET.0 + STORM_BUDGET.1;
    if chor.storm_completed != capacity || chor.storm_shed != STORM_REQUESTS - capacity {
        return Err(format!(
            "storm split drifted: {}/{} completed/shed, expected {}/{}",
            chor.storm_completed,
            chor.storm_shed,
            capacity,
            STORM_REQUESTS - capacity
        ));
    }
    if chor.wave_executions != 1 || chor.wave_followers != (WAVE_REQUESTS - 1) as u64 {
        return Err(format!(
            "coalescing drifted: {} executions, {} followers (expected 1 and {})",
            chor.wave_executions,
            chor.wave_followers,
            WAVE_REQUESTS - 1
        ));
    }
    let checks = [
        (
            "requests",
            vec![STORM_REQUESTS as u64, WAVE_REQUESTS as u64],
        ),
        ("completed", vec![chor.storm_completed as u64]),
        ("shed", vec![chor.storm_shed as u64]),
        ("executions", vec![chor.wave_executions]),
        ("coalesced_followers", vec![chor.wave_followers]),
    ];
    for (key, want) in checks {
        let got = extract_ints(&json, key);
        if got != want {
            return Err(format!(
                "BENCH_service.json {key} is {got:?}, expected {want:?}"
            ));
        }
    }
    Ok(())
}

/// The six-query mix shared by the admission-overhead and wire-overhead
/// comparisons: clean words, an observed perturbation source, a miss.
const GATE_QUERIES: [&str; 6] = [
    "republicans",
    "democrats",
    "vaccine",
    "mandates",
    "dirty",
    "zzzmiss",
];

/// One Look Up over an open keep-alive connection; returns the hit
/// count parsed out of the JSON body (so the wire path's result shape
/// can be pinned against the direct path's).
fn http_lookup(stream: &mut std::net::TcpStream, token: &str, query: &str) -> usize {
    use std::io::{Read, Write};
    stream
        .write_all(
            format!(
                "GET /lookup?q={query} HTTP/1.1\r\nHost: bench\r\nAuthorization: Bearer {token}\r\n\r\n"
            )
            .as_bytes(),
        )
        .expect("wire send");
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = std::str::from_utf8(&buf[..pos]).expect("UTF-8 headers");
            assert!(
                head.starts_with("HTTP/1.1 200"),
                "wire lookup for {query:?} answered {head:?}"
            );
            let content_length: usize = head
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))
                .and_then(|v| v.parse().ok())
                .expect("Content-Length");
            while buf.len() < pos + 4 + content_length {
                let n = stream.read(&mut chunk).expect("wire read");
                assert!(n > 0, "server closed mid-body");
                buf.extend_from_slice(&chunk[..n]);
            }
            let body =
                std::str::from_utf8(&buf[pos + 4..pos + 4 + content_length]).expect("UTF-8 body");
            return body.matches("\"token\":").count();
        }
        let n = stream.read(&mut chunk).expect("wire read");
        assert!(n > 0, "server closed mid-headers");
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// Outcome of the HTTP wire-overhead run: the same workload measured
/// over the loopback socket and via the direct gateway call, plus the
/// server's own served-request count.
struct HttpOverhead {
    wire: Measured,
    direct: Measured,
    requests_served: u64,
    /// Registry totals after the run — what a `GET /metrics` scrape
    /// would report: wire-layer responses across all statuses, and
    /// request-timing observations.
    registry_responses: u64,
    registry_timings: u64,
}

/// Serve the bench fixture over loopback HTTP and run the comparison.
/// Single connection, sequential requests: the difference between the
/// two measurements is pure wire tax (parse + route + serialize + two
/// kernel crossings), not contention.
fn run_http_overhead(rounds: usize) -> HttpOverhead {
    let svc = service_fixture();
    let gw: Arc<Gateway<TokenDatabase>> =
        Arc::new(Gateway::new(Arc::clone(&svc), GatewayConfig::default()));
    let auth = svc.issue_token("bench-http");
    let params = LookupParams::paper_default();

    let server =
        HttpServer::bind(Arc::clone(&gw), HttpConfig::default(), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let serve = std::thread::spawn(move || server.serve());

    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    for _ in 0..WARMUP_ROUNDS {
        for q in GATE_QUERIES {
            let _ = http_lookup(&mut stream, auth.as_str(), q);
            let _ = gw
                .look_up(&auth, q, params, CallOptions::default())
                .unwrap();
        }
    }
    let wire = measure(&GATE_QUERIES, rounds, |q| {
        http_lookup(&mut stream, auth.as_str(), q)
    });
    let direct = measure(&GATE_QUERIES, rounds, |q| {
        gw.look_up(&auth, q, params, CallOptions::default())
            .unwrap()
            .len()
    });
    assert_eq!(
        wire.total_hits, direct.total_hits,
        "the wire layer adds transport, not different results"
    );
    drop(stream);
    handle.shutdown();
    let report = serve.join().expect("serve thread");
    let snap = gw.metrics().snapshot();
    HttpOverhead {
        wire,
        direct,
        requests_served: report.requests_served,
        registry_responses: snap.counter_total("cryptext_http_responses_total"),
        registry_timings: snap.histogram_count("cryptext_http_request_us"),
    }
}

/// The wire dimension's invariants are deterministic (result shapes and
/// request counts, not timings), so `--check` re-runs the loopback
/// comparison live and pins the committed counts against it.
fn check_http() -> Result<(), String> {
    let json = std::fs::read_to_string("BENCH_http.json")
        .map_err(|e| format!("read BENCH_http.json: {e}"))?;
    let fresh = run_http_overhead(HTTP_ROUNDS);
    let checks = [
        (
            "total_hits",
            vec![fresh.wire.total_hits as u64, fresh.direct.total_hits as u64],
        ),
        ("requests_served", vec![fresh.requests_served]),
        ("rounds", vec![HTTP_ROUNDS as u64]),
    ];
    for (key, want) in checks {
        let got = extract_ints(&json, key);
        if got != want {
            return Err(format!(
                "BENCH_http.json {key} is {got:?}, expected {want:?}"
            ));
        }
    }
    // The registry is the same surface a `GET /metrics` scrape renders:
    // after the loopback run its wire-layer totals must equal the
    // served-request count pinned above.
    if fresh.registry_responses != fresh.requests_served {
        return Err(format!(
            "registry cryptext_http_responses_total is {}, expected the served-request count {}",
            fresh.registry_responses, fresh.requests_served
        ));
    }
    if fresh.registry_timings != fresh.requests_served {
        return Err(format!(
            "registry cryptext_http_request_us count is {}, expected the served-request count {}",
            fresh.registry_timings, fresh.requests_served
        ));
    }
    Ok(())
}

/// The metrics-overhead gate: attaching the per-stage instrument bundle
/// must not move the hot-path p50. Each workload is measured twice on
/// this machine — stages detached (the configuration the committed pins
/// were produced under) and attached (the production service
/// configuration) — taking the best-of-three p50 per arm, and the
/// instrumented p50 must stay within 5% of the reference. The reference
/// is the larger of the live detached p50 and the committed pin, so the
/// gate holds the pinning machine to its absolute numbers and degrades
/// to a pure same-run A/B on faster or slower hardware; the small
/// absolute slack absorbs `Instant` granularity on microsecond p50s.
fn check_metrics_overhead(
    db: &TokenDatabase,
    cx: &CrypText,
    queries: &[&str],
    norm_texts: &[&str],
) -> Result<(), String> {
    let lookup_json = std::fs::read_to_string("BENCH_lookup.json")
        .map_err(|e| format!("read BENCH_lookup.json: {e}"))?;
    let norm_json = std::fs::read_to_string("BENCH_normalize.json")
        .map_err(|e| format!("read BENCH_normalize.json: {e}"))?;
    // The first p50_us in each file is the optimized block's pin (the
    // naive, sharded, and normalize sections all come after it).
    let pinned_lookup = *extract_floats(&lookup_json, "p50_us")
        .first()
        .ok_or("BENCH_lookup.json has no p50_us fields")?;
    let pinned_norm = *extract_floats(&norm_json, "p50_us")
        .first()
        .ok_or("BENCH_normalize.json has no p50_us fields")?;

    let params = LookupParams::paper_default();
    let lookup_p50 = |stages: Option<Arc<StageMetrics>>| -> f64 {
        let mut scratch = LookupScratch::new();
        scratch.attach_stages(stages);
        for _ in 0..WARMUP_ROUNDS {
            for q in queries {
                let _ = look_up_with(db, q, params, &mut scratch).unwrap();
            }
        }
        (0..3)
            .map(|_| {
                measure(queries, MEASURE_ROUNDS, |q| {
                    look_up_with(db, q, params, &mut scratch).unwrap().len()
                })
                .p50_us
            })
            .fold(f64::INFINITY, f64::min)
    };
    let normalizer = Normalizer::new(cx.language_model());
    let norm_p50 = |stages: Option<Arc<StageMetrics>>| -> f64 {
        let mut scratch = NormalizeScratch::new();
        scratch.attach_stages(stages);
        // No separate warmup pass: the first of the three reps warms the
        // scratch and the best-of-three min discards it.
        (0..3)
            .map(|_| {
                measure(norm_texts, NORM_ROUNDS, |t| {
                    normalizer
                        .normalize_with(cx.database(), t, NormalizeParams::default(), &mut scratch)
                        .unwrap()
                        .corrections
                        .len()
                })
                .p50_us
            })
            .fold(f64::INFINITY, f64::min)
    };
    let gate = |what: &str, detached: f64, instrumented: f64, pinned: f64| -> Result<(), String> {
        let allowed = detached.max(pinned) * 1.05 + 0.25;
        if instrumented > allowed {
            return Err(format!(
                "instrumented {what} p50 {instrumented:.2}µs exceeds the 5% metrics-overhead \
                 gate (detached {detached:.2}µs, pinned {pinned:.2}µs, allowed {allowed:.2}µs)"
            ));
        }
        Ok(())
    };

    let lookup_detached = lookup_p50(None);
    let lookup_instrumented = lookup_p50(Some(Arc::new(StageMetrics::new())));
    gate(
        "lookup",
        lookup_detached,
        lookup_instrumented,
        pinned_lookup,
    )?;
    let norm_detached = norm_p50(None);
    let norm_instrumented = norm_p50(Some(Arc::new(StageMetrics::new())));
    gate("normalize", norm_detached, norm_instrumented, pinned_norm)
}

/// A deterministic Zipf-distributed index sequence over `pool` items:
/// xorshift64* stream mapped through the CDF of `1/(i+1)^s` weights. Pure
/// function of the seed, so `--check` replays the exact same workload.
fn zipf_sequence(pool: usize, len: usize, seed: u64) -> Vec<usize> {
    let weights: Vec<f64> = (0..pool)
        .map(|i| 1.0 / ((i + 1) as f64).powf(CACHE_ZIPF_S))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(pool);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    let mut x = seed | 1;
    (0..len)
        .map(|_| {
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            let u = (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64;
            cdf.iter().position(|&c| u < c).unwrap_or(pool - 1)
        })
        .collect()
}

/// What the cache dimension measured: the replay's latency quantiles, the
/// deterministic tier-1 counters it produced (whole-text result cache and
/// per-token candidate memo), and the uncached-vs-warm-hit latency split.
struct CacheReplay {
    result_hits: u64,
    result_misses: u64,
    candidate_hits: u64,
    candidate_misses: u64,
    negative_candidate_hits: u64,
    invalidation_bumps: u64,
    invalidated_entries: u64,
    replay_p50_us: f64,
    replay_p99_us: f64,
    uncached: Measured,
    warm: Measured,
}

/// Run the Zipf replay through a caching service, byte-checking every
/// response against an identically-built uncached engine, then measure
/// the uncached path and a pure warm-hit pass over the same pool.
fn run_cache_replay(platform: &cryptext_stream::SocialPlatform) -> CacheReplay {
    // Every fourth pool text gets the same out-of-dictionary token
    // appended (to both the reference and the service side — the texts
    // stay identical). Its empty candidate list is written once and then
    // served as a *negative* candidate hit when the other carriers fill
    // cold; exact repeats never reach the memo (the whole-text result
    // cache absorbs them), so this cross-text sharing is what pins the
    // negative path.
    let texts: Vec<String> = platform
        .posts()
        .iter()
        .take(CACHE_POOL)
        .enumerate()
        .map(|(i, p)| {
            if i % 4 == 0 {
                format!("{} zzqzyxt", p.text)
            } else {
                p.text.clone()
            }
        })
        .collect();
    let pool: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();

    // The uncached reference: its own identically-built system, normalized
    // through the bare engine (no service, no cache).
    let cx = CrypText::new(build_db(platform));
    let normalizer = Normalizer::new(cx.language_model());
    let mut scratch = NormalizeScratch::new();
    let reference: Vec<_> = pool
        .iter()
        .map(|t| {
            normalizer
                .normalize_with(cx.database(), t, NormalizeParams::default(), &mut scratch)
                .expect("reference normalize")
        })
        .collect();

    // The caching service under test, on a frozen clock (no TTL expiry —
    // the mid-replay generation bump is the only invalidation).
    let svc = CryptextService::new(
        CrypText::new(build_db(platform)),
        ServiceConfig {
            rate_limit_per_minute: 100_000_000,
            ..ServiceConfig::default()
        },
        Arc::new(SimClock::new(0)),
    );
    let auth = svc.issue_token("bench-cache");

    let seq = zipf_sequence(CACHE_POOL, CACHE_REPLAY, SEED);
    let mut samples_us: Vec<f64> = Vec::with_capacity(CACHE_REPLAY);
    for (j, &i) in seq.iter().enumerate() {
        if j == CACHE_REPLAY / 2 {
            svc.bump_generation();
        }
        let start = Instant::now();
        let got = svc
            .normalize(&auth, pool[i], NormalizeParams::default())
            .expect("replay normalize");
        samples_us.push(start.elapsed().as_nanos() as f64 / 1e3);
        assert_eq!(
            got, reference[i],
            "cached replay must stay byte-identical to the uncached engine"
        );
    }
    // Capture the counters before any further traffic: these are the
    // replay's own deterministic hit/miss/invalidation counts.
    let tiers = svc.cache_tier_stats();
    samples_us.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let pick = |q: f64| samples_us[((samples_us.len() - 1) as f64 * q).round() as usize];
    let (replay_p50_us, replay_p99_us) = (pick(0.5), pick(0.99));

    // The latency split: uncached engine path vs pure warm hits, same
    // pool, same rounds. One priming pass each so the warm side really is
    // all hits (the bump halfway through the replay left tail entries
    // cold) and the uncached side starts on a hot scratch.
    for t in &pool {
        let _ = normalizer
            .normalize_with(cx.database(), t, NormalizeParams::default(), &mut scratch)
            .unwrap();
        let _ = svc.normalize(&auth, t, NormalizeParams::default()).unwrap();
    }
    let uncached = measure(&pool, NORM_ROUNDS, |t| {
        normalizer
            .normalize_with(cx.database(), t, NormalizeParams::default(), &mut scratch)
            .unwrap()
            .corrections
            .len()
    });
    let warm = measure(&pool, NORM_ROUNDS, |t| {
        svc.normalize(&auth, t, NormalizeParams::default())
            .unwrap()
            .corrections
            .len()
    });
    assert_eq!(
        warm.total_hits, uncached.total_hits,
        "the warm-hit pass must produce identical corrections"
    );

    CacheReplay {
        result_hits: tiers.normalize_results.hits,
        result_misses: tiers.normalize_results.misses,
        candidate_hits: tiers.normalize.hits,
        candidate_misses: tiers.normalize.misses,
        negative_candidate_hits: tiers.negative_hits,
        invalidation_bumps: tiers.invalidation_bumps,
        invalidated_entries: tiers.invalidated_entries,
        replay_p50_us,
        replay_p99_us,
        uncached,
        warm,
    }
}

/// The cache dimension's gate. Unlike the other dimensions this one pins
/// *latency* as well as counts — the whole point of the tier is the
/// hit-path speedup, and the margins are wide enough to be
/// machine-independent: a warm hit must cost at most a third of the
/// uncached normalize p50, and the hit-dominated Zipf replay's p99 must
/// undercut the uncached p99. The hit/miss/invalidation counts are a pure
/// function of the seeded workload and must match the committed file
/// exactly; byte-identity of every cached response is asserted inside the
/// replay itself.
fn check_cache(platform: &cryptext_stream::SocialPlatform) -> Result<(), String> {
    let json = std::fs::read_to_string("BENCH_cache.json")
        .map_err(|e| format!("read BENCH_cache.json: {e}"))?;
    let r = run_cache_replay(platform);
    if r.warm.p50_us * 3.0 > r.uncached.p50_us {
        return Err(format!(
            "warm-hit normalize p50 {:.2}µs is not ≤ 1/3 of the uncached {:.2}µs",
            r.warm.p50_us, r.uncached.p50_us
        ));
    }
    if r.replay_p99_us >= r.uncached.p99_us {
        return Err(format!(
            "Zipf-replay p99 {:.2}µs did not undercut the uncached p99 {:.2}µs",
            r.replay_p99_us, r.uncached.p99_us
        ));
    }
    let checks = [
        ("requests", CACHE_REPLAY as u64),
        ("distinct_texts", CACHE_POOL as u64),
        ("result_hits", r.result_hits),
        ("result_misses", r.result_misses),
        ("candidate_hits", r.candidate_hits),
        ("candidate_misses", r.candidate_misses),
        ("negative_candidate_hits", r.negative_candidate_hits),
        ("invalidation_bumps", r.invalidation_bumps),
    ];
    for (key, want) in checks {
        let got = extract_ints(&json, key);
        if got != vec![want] {
            return Err(format!(
                "BENCH_cache.json {key} is {got:?}, expected [{want}]"
            ));
        }
    }
    Ok(())
}

/// Validate the committed invariant fields; returns the BENCH_lookup.json
/// contents so the sharded check can reuse them without a second read.
fn check_committed(expected: &Invariants) -> Result<String, String> {
    let lookup_json = std::fs::read_to_string("BENCH_lookup.json")
        .map_err(|e| format!("read BENCH_lookup.json: {e}"))?;
    let norm_json = std::fs::read_to_string("BENCH_normalize.json")
        .map_err(|e| format!("read BENCH_normalize.json: {e}"))?;

    let want_hits = (expected.hits_per_round * MEASURE_ROUNDS) as u64;
    let committed_hits = extract_ints(&lookup_json, "total_hits");
    if committed_hits.is_empty() {
        return Err("BENCH_lookup.json has no total_hits fields".into());
    }
    for (i, &h) in committed_hits.iter().enumerate() {
        if h != want_hits {
            return Err(format!(
                "total_hits[{i}] drifted: committed {h}, recomputed {want_hits}"
            ));
        }
    }

    let want_corrections = (expected.corrections_per_round * NORM_ROUNDS) as u64;
    let committed_corrections = extract_ints(&norm_json, "corrections_total");
    if committed_corrections.is_empty() {
        return Err("BENCH_normalize.json has no corrections_total fields".into());
    }
    for (i, &c) in committed_corrections.iter().enumerate() {
        if c != want_corrections {
            return Err(format!(
                "corrections_total[{i}] drifted: committed {c}, recomputed {want_corrections}"
            ));
        }
    }

    // The shards dimension must be present and cover exactly SHARD_COUNTS
    // (each entry's total_hits was already validated above — every
    // "total_hits" in the file, sharded entries included, must equal the
    // recomputed single-instance count).
    let committed_shards = extract_ints(&lookup_json, "shards");
    let want_shards: Vec<u64> = SHARD_COUNTS.iter().map(|&n| n as u64).collect();
    if committed_shards != want_shards {
        return Err(format!(
            "BENCH_lookup.json shards dimension is {committed_shards:?}, expected {want_shards:?}"
        ));
    }
    Ok(lookup_json)
}

fn main() {
    let check_only = std::env::args().any(|a| a == "--check");

    let platform = build_platform(N_POSTS, SEED);
    let texts: Vec<String> = platform.posts().iter().map(|p| p.text.clone()).collect();

    // One lexicon-seeded database serves both the raw lookup measurements
    // and (wrapped in CrypText) the normalization measurements.
    let cx = CrypText::new(build_db(&platform));
    let db = cx.database();
    let stats = db.stats();

    // A query mix of clean words, observed perturbations, and misses.
    let queries: Vec<&str> = [
        "democrats",
        "republicans",
        "vaccine",
        "suicide",
        "muslim",
        "depression",
        "vacc1ne",
        "the",
        "demokrats",
        "zzzmiss",
        "lesbian",
        "dirty",
    ]
    .into_iter()
    .collect();
    let params = LookupParams::paper_default();

    // Normalization over a slice of real (perturbed) feed texts.
    let norm_texts: Vec<&str> = texts.iter().take(NORM_TEXTS).map(|s| s.as_str()).collect();

    if check_only {
        let invariants = compute_invariants(db, &cx, &queries, &norm_texts);
        match check_committed(&invariants)
            .and_then(|lookup_json| {
                check_sharded(db, &queries, invariants.hits_per_round, &lookup_json)
            })
            .and_then(|()| check_ingest(&texts))
            .and_then(|()| check_service())
            .and_then(|()| check_cache(&platform))
            .and_then(|()| check_http())
            .and_then(|()| check_metrics_overhead(db, &cx, &queries, &norm_texts))
        {
            Ok(()) => {
                println!(
                    "bench invariants ok: total_hits {} per round × {MEASURE_ROUNDS}, \
                     corrections {} per round × {NORM_ROUNDS}",
                    invariants.hits_per_round, invariants.corrections_per_round
                );
                return;
            }
            Err(msg) => {
                eprintln!("bench invariant drift: {msg}");
                std::process::exit(1);
            }
        }
    }

    // Ingest timing: the same corpus sequentially and in one parallel
    // batch. Measurement-mode only — check mode never reads the timings,
    // and the seq == par equivalence is already pinned by unit tests.
    let ingest_seq_start = Instant::now();
    let mut db_seq = TokenDatabase::with_lexicon();
    for t in &texts {
        db_seq.ingest_text(t);
    }
    let ingest_seq_ms = ingest_seq_start.elapsed().as_secs_f64() * 1e3;

    let ingest_par_start = Instant::now();
    let mut db_par = TokenDatabase::with_lexicon();
    db_par.ingest_texts(&texts);
    let ingest_par_ms = ingest_par_start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(db_seq.stats(), db_par.stats(), "parallel ingest must agree");

    // Durable streaming ingest: per-batch delta-log append latency vs the
    // full persist_to it replaces as the durability point, plus compaction
    // wall time — O(batch) appends against the O(corpus) alternative.
    let ingest_slice = &texts[..INGEST_BATCHES.min(texts.len())];
    let dur_dir =
        std::env::temp_dir().join(format!("cryptext-bench-ingest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dur_dir);
    let mut dur = DurableTokenStore::<TokenDatabase>::open(&dur_dir, DurableOptions::default())
        .expect("open durable store");
    let mut append_us: Vec<f64> = Vec::with_capacity(ingest_slice.len());
    let mut compact_ms: Vec<f64> = Vec::new();
    let ingest_wall = Instant::now();
    for (i, t) in ingest_slice.iter().enumerate() {
        let start = Instant::now();
        dur.try_ingest_text(t).expect("durable ingest");
        append_us.push(start.elapsed().as_nanos() as f64 / 1e3);
        if (i + 1) % COMPACT_EVERY == 0 {
            let c = Instant::now();
            dur.compact().expect("compaction");
            compact_ms.push(c.elapsed().as_secs_f64() * 1e3);
        }
    }
    let ingest_wall_s = ingest_wall.elapsed().as_secs_f64();
    let dur_stats = dur.inner().stats();
    let final_epoch = dur.epoch();

    let full_store = Database::in_memory();
    let full_persist_start = Instant::now();
    dur.inner()
        .persist_to(&full_store, "tokens")
        .expect("full persist");
    let full_persist_ms = full_persist_start.elapsed().as_secs_f64() * 1e3;

    // Recovery smoke: reopening replays snapshot + logs to the same state.
    drop(dur);
    let reopened = DurableTokenStore::<TokenDatabase>::open(&dur_dir, DurableOptions::default())
        .expect("recovery open");
    assert_eq!(
        reopened.inner().stats(),
        dur_stats,
        "recovered state must be identical"
    );
    drop(reopened);
    let _ = std::fs::remove_dir_all(&dur_dir);

    append_us.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let pick_append = |q: f64| append_us[((append_us.len() - 1) as f64 * q).round() as usize];
    let append_p50_us = pick_append(0.5);
    let append_p99_us = pick_append(0.99);
    let compact_mean_ms = compact_ms.iter().sum::<f64>() / compact_ms.len() as f64;
    let compact_max_ms = compact_ms.iter().cloned().fold(0.0f64, f64::max);

    let mut scratch = LookupScratch::new();
    for _ in 0..WARMUP_ROUNDS {
        for q in &queries {
            let _ = look_up_with(db, q, params, &mut scratch).unwrap();
            let _ = look_up_naive(db, q, params).unwrap();
        }
    }

    let optimized = measure(&queries, MEASURE_ROUNDS, |q| {
        look_up_with(db, q, params, &mut scratch).unwrap().len()
    });
    let naive = measure(&queries, MEASURE_ROUNDS, |q| {
        look_up_naive(db, q, params).unwrap().len()
    });
    assert_eq!(
        optimized.total_hits, naive.total_hits,
        "engines must retrieve identical result sets"
    );
    let lookup_speedup = naive.p50_us / optimized.p50_us;

    // The shards dimension: the same workload over the consistent-hash
    // sharded backend at every configured count. Byte-identical results
    // are asserted (total_hits), the single-shard entry doubles as the
    // trait-indirection regression guard against `optimized`, and each
    // entry records the Bloom routing's deterministic skip statistics
    // (shard walks issued vs skipped) plus the fan-out width available to
    // the per-query parallel walk on this machine.
    let sharded_measurements: Vec<(usize, Measured, usize, usize)> = SHARD_COUNTS
        .iter()
        .map(|&n| {
            let wide = ShardedTokenDatabase::from_database(db, n);
            let mut scratch = LookupScratch::new();
            for _ in 0..WARMUP_ROUNDS {
                for q in &queries {
                    let _ = look_up_with(&wide, q, params, &mut scratch).unwrap();
                }
            }
            let m = measure(&queries, MEASURE_ROUNDS, |q| {
                look_up_with(&wide, q, params, &mut scratch).unwrap().len()
            });
            assert_eq!(
                m.total_hits, optimized.total_hits,
                "{n}-shard backend must retrieve identical result sets"
            );
            let (walks, skipped) = skip_stats(&wide, &queries);
            (n, m, walks, skipped)
        })
        .collect();

    // Normalization: the zero-copy scratch-reusing engine vs the kept
    // naive reference, on identical texts.
    let normalizer = Normalizer::new(cx.language_model());
    let mut norm_scratch = NormalizeScratch::new();
    for t in &norm_texts {
        let fast = normalizer
            .normalize_with(
                cx.database(),
                t,
                NormalizeParams::default(),
                &mut norm_scratch,
            )
            .unwrap();
        let slow = normalizer
            .normalize_naive(cx.database(), t, NormalizeParams::default())
            .unwrap();
        assert_eq!(fast, slow, "normalization engines must agree on {t:?}");
    }

    let norm_opt = measure(&norm_texts, NORM_ROUNDS, |t| {
        normalizer
            .normalize_with(
                cx.database(),
                t,
                NormalizeParams::default(),
                &mut norm_scratch,
            )
            .unwrap()
            .corrections
            .len()
    });
    let norm_naive = measure(&norm_texts, NORM_ROUNDS, |t| {
        normalizer
            .normalize_naive(cx.database(), t, NormalizeParams::default())
            .unwrap()
            .corrections
            .len()
    });
    assert_eq!(
        norm_opt.total_hits, norm_naive.total_hits,
        "engines must produce identical corrections"
    );
    let norm_speedup = norm_naive.p50_us / norm_opt.p50_us;

    // ---- BENCH_lookup.json (same shape as PR 1, for trajectory diffs) ----
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"lookup\",");
    let _ = writeln!(
        out,
        "  \"corpus\": {{ \"posts\": {N_POSTS}, \"seed\": {SEED} }},"
    );
    let _ = writeln!(
        out,
        "  \"db\": {{ \"unique_tokens\": {}, \"sounds_k1\": {}, \"total_occurrences\": {} }},",
        stats.unique_tokens, stats.unique_sounds[1], stats.total_occurrences
    );
    let _ = writeln!(
        out,
        "  \"ingest\": {{ \"sequential_ms\": {ingest_seq_ms:.1}, \"parallel_batch_ms\": {ingest_par_ms:.1}, \"threads\": {} }},",
        cryptext_common::par::max_threads()
    );
    let _ = writeln!(out, "  \"lookup_k1_d3\": {{");
    json_block(&mut out, "optimized", &optimized, "total_hits", false);
    json_block(&mut out, "naive", &naive, "total_hits", false);
    let _ = writeln!(
        out,
        "    \"speedup_p50_naive_over_optimized\": {lookup_speedup:.2}"
    );
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"shards\": [");
    for (i, (n, m, walks, skipped)) in sharded_measurements.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{ \"shards\": {n}, \"queries_per_sec\": {:.1}, \"p50_us\": {:.2}, \"p99_us\": {:.2}, \"total_hits\": {}, \"fan_out_threads\": {}, \"shard_walks\": {walks}, \"skipped_shard_walks\": {skipped}, \"skip_rate\": {:.2} }}{}",
            m.queries_per_sec,
            m.p50_us,
            m.p99_us,
            m.total_hits,
            cryptext_common::par::max_threads().min(*n),
            *skipped as f64 / *walks as f64,
            if i + 1 == sharded_measurements.len() { "" } else { "," }
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"normalize_default\": {{");
    let _ = writeln!(
        out,
        "    \"texts_per_sec\": {:.1},",
        norm_opt.queries_per_sec
    );
    let _ = writeln!(out, "    \"p50_us\": {:.2},", norm_opt.p50_us);
    let _ = writeln!(out, "    \"p99_us\": {:.2}", norm_opt.p99_us);
    let _ = writeln!(out, "  }}");
    out.push_str("}\n");
    std::fs::write("BENCH_lookup.json", &out).expect("write BENCH_lookup.json");
    print!("{out}");

    // ---- BENCH_normalize.json (optimized vs naive, invariants) ----
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"normalize\",");
    let _ = writeln!(
        out,
        "  \"corpus\": {{ \"posts\": {N_POSTS}, \"seed\": {SEED}, \"texts\": {NORM_TEXTS}, \"rounds\": {NORM_ROUNDS} }},"
    );
    let _ = writeln!(out, "  \"normalize_default\": {{");
    json_block(&mut out, "optimized", &norm_opt, "corrections_total", false);
    json_block(&mut out, "naive", &norm_naive, "corrections_total", false);
    let _ = writeln!(
        out,
        "    \"speedup_p50_naive_over_optimized\": {norm_speedup:.2}"
    );
    let _ = writeln!(out, "  }}");
    out.push_str("}\n");
    std::fs::write("BENCH_normalize.json", &out).expect("write BENCH_normalize.json");
    print!("{out}");

    // ---- BENCH_ingest.json (durable streaming-ingest dimension) ----
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"ingest\",");
    let _ = writeln!(
        out,
        "  \"corpus\": {{ \"posts\": {N_POSTS}, \"seed\": {SEED} }},"
    );
    let _ = writeln!(out, "  \"durable\": {{");
    let _ = writeln!(out, "    \"batches\": {},", ingest_slice.len());
    let _ = writeln!(out, "    \"append_p50_us\": {append_p50_us:.2},");
    let _ = writeln!(out, "    \"append_p99_us\": {append_p99_us:.2},");
    let _ = writeln!(
        out,
        "    \"batches_per_sec\": {:.1},",
        ingest_slice.len() as f64 / ingest_wall_s
    );
    let _ = writeln!(out, "    \"unique_tokens\": {},", dur_stats.unique_tokens);
    let _ = writeln!(
        out,
        "    \"total_occurrences\": {}",
        dur_stats.total_occurrences
    );
    let _ = writeln!(out, "  }},");
    let _ = writeln!(
        out,
        "  \"compaction\": {{ \"compactions\": {}, \"wall_ms_mean\": {compact_mean_ms:.1}, \"wall_ms_max\": {compact_max_ms:.1}, \"final_epoch\": {final_epoch} }},",
        compact_ms.len()
    );
    let _ = writeln!(out, "  \"full_persist_ms\": {full_persist_ms:.1},");
    let _ = writeln!(
        out,
        "  \"durability_cost_ratio_full_persist_over_append_p50\": {:.1}",
        full_persist_ms * 1e3 / append_p50_us
    );
    out.push_str("}\n");
    std::fs::write("BENCH_ingest.json", &out).expect("write BENCH_ingest.json");
    print!("{out}");

    // ---- BENCH_service.json (gateway overload dimension) ----
    let chor = run_service_choreography();

    // Admission overhead: the same Look Up mix through the full layer
    // onion (admission → auth → coalescing → deadline → pool dispatch)
    // vs the direct service endpoint, uncontended and sequential so the
    // difference is pure layering cost.
    let svc = service_fixture();
    let gw: Arc<Gateway<TokenDatabase>> =
        Arc::new(Gateway::new(Arc::clone(&svc), GatewayConfig::default()));
    let auth = svc.issue_token("bench-overhead");
    let gate_queries = GATE_QUERIES;
    for _ in 0..WARMUP_ROUNDS {
        for q in gate_queries {
            let _ = svc.look_up(&auth, q, params).unwrap();
            let _ = gw
                .look_up(&auth, q, params, CallOptions::default())
                .unwrap();
        }
    }
    let svc_direct = measure(&gate_queries, SERVICE_ROUNDS, |q| {
        svc.look_up(&auth, q, params).unwrap().len()
    });
    let svc_gated = measure(&gate_queries, SERVICE_ROUNDS, |q| {
        gw.look_up(&auth, q, params, CallOptions::default())
            .unwrap()
            .len()
    });
    assert_eq!(
        svc_gated.total_hits, svc_direct.total_hits,
        "the gateway adds layers, not different results"
    );

    let capacity = STORM_BUDGET.0 + STORM_BUDGET.1;
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"service\",");
    let _ = writeln!(
        out,
        "  \"gateway\": {{ \"storm_max_concurrent\": {}, \"storm_max_queued\": {} }},",
        STORM_BUDGET.0, STORM_BUDGET.1
    );
    let _ = writeln!(
        out,
        "  \"admission_overhead\": {{ \"direct_p50_us\": {:.2}, \"gateway_p50_us\": {:.2}, \"overhead_p50_us\": {:.2} }},",
        svc_direct.p50_us,
        svc_gated.p50_us,
        svc_gated.p50_us - svc_direct.p50_us
    );
    let _ = writeln!(
        out,
        "  \"storm_10x\": {{ \"requests\": {STORM_REQUESTS}, \"capacity\": {capacity}, \"completed\": {}, \"shed\": {}, \"shed_rate\": {:.2} }},",
        chor.storm_completed,
        chor.storm_shed,
        chor.storm_shed as f64 / STORM_REQUESTS as f64
    );
    let _ = writeln!(
        out,
        "  \"coalesce_wave\": {{ \"requests\": {WAVE_REQUESTS}, \"executions\": {}, \"coalesced_followers\": {}, \"coalesce_hit_rate\": {:.3} }}",
        chor.wave_executions,
        chor.wave_followers,
        chor.wave_followers as f64 / WAVE_REQUESTS as f64
    );
    out.push_str("}\n");
    std::fs::write("BENCH_service.json", &out).expect("write BENCH_service.json");
    print!("{out}");

    // ---- BENCH_cache.json (tiered result-cache dimension) ----
    let cache = run_cache_replay(&platform);
    let cache_hit_rate = cache.result_hits as f64 / CACHE_REPLAY as f64;
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"cache\",");
    let _ = writeln!(
        out,
        "  \"corpus\": {{ \"posts\": {N_POSTS}, \"seed\": {SEED} }},"
    );
    let _ = writeln!(out, "  \"zipf_replay\": {{");
    let _ = writeln!(out, "    \"requests\": {CACHE_REPLAY},");
    let _ = writeln!(out, "    \"distinct_texts\": {CACHE_POOL},");
    let _ = writeln!(out, "    \"zipf_s\": {CACHE_ZIPF_S},");
    let _ = writeln!(out, "    \"p50_us\": {:.2},", cache.replay_p50_us);
    let _ = writeln!(out, "    \"p99_us\": {:.2},", cache.replay_p99_us);
    let _ = writeln!(out, "    \"result_hits\": {},", cache.result_hits);
    let _ = writeln!(out, "    \"result_misses\": {},", cache.result_misses);
    let _ = writeln!(out, "    \"candidate_hits\": {},", cache.candidate_hits);
    let _ = writeln!(out, "    \"candidate_misses\": {},", cache.candidate_misses);
    let _ = writeln!(out, "    \"hit_rate\": {cache_hit_rate:.4},");
    let _ = writeln!(
        out,
        "    \"negative_candidate_hits\": {},",
        cache.negative_candidate_hits
    );
    let _ = writeln!(
        out,
        "    \"invalidation_bumps\": {},",
        cache.invalidation_bumps
    );
    let _ = writeln!(
        out,
        "    \"invalidated_entries\": {}",
        cache.invalidated_entries
    );
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"latency_split\": {{");
    let _ = writeln!(
        out,
        "    \"uncached_p50_us\": {:.2},",
        cache.uncached.p50_us
    );
    let _ = writeln!(
        out,
        "    \"uncached_p99_us\": {:.2},",
        cache.uncached.p99_us
    );
    let _ = writeln!(out, "    \"warm_hit_p50_us\": {:.2},", cache.warm.p50_us);
    let _ = writeln!(out, "    \"warm_hit_p99_us\": {:.2},", cache.warm.p99_us);
    let _ = writeln!(
        out,
        "    \"speedup_p50_uncached_over_hit\": {:.2}",
        cache.uncached.p50_us / cache.warm.p50_us
    );
    let _ = writeln!(out, "  }}");
    out.push_str("}\n");
    std::fs::write("BENCH_cache.json", &out).expect("write BENCH_cache.json");
    print!("{out}");

    // ---- BENCH_http.json (HTTP wire dimension) ----
    let http = run_http_overhead(HTTP_ROUNDS);
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"http\",");
    let _ = writeln!(
        out,
        "  \"workload\": {{ \"queries\": {}, \"rounds\": {HTTP_ROUNDS} }},",
        GATE_QUERIES.len()
    );
    out.push_str("  \"paths\": {\n");
    json_block(&mut out, "wire", &http.wire, "total_hits", false);
    json_block(&mut out, "direct_gateway", &http.direct, "total_hits", true);
    out.push_str("  },\n");
    let _ = writeln!(
        out,
        "  \"wire_overhead\": {{ \"p50_us\": {:.2}, \"p99_us\": {:.2} }},",
        http.wire.p50_us - http.direct.p50_us,
        http.wire.p99_us - http.direct.p99_us
    );
    let _ = writeln!(out, "  \"requests_served\": {}", http.requests_served);
    out.push_str("}\n");
    std::fs::write("BENCH_http.json", &out).expect("write BENCH_http.json");
    print!("{out}");

    eprintln!(
        "lookup p50: optimized {:.2}µs vs naive {:.2}µs → {lookup_speedup:.2}x",
        optimized.p50_us, naive.p50_us
    );
    eprintln!(
        "normalize p50: optimized {:.2}µs vs naive {:.2}µs → {norm_speedup:.2}x",
        norm_opt.p50_us, norm_naive.p50_us
    );
    for (n, m, walks, skipped) in &sharded_measurements {
        eprintln!(
            "lookup p50 over {n} shard(s): {:.2}µs (skip rate {skipped}/{walks})",
            m.p50_us
        );
    }
    eprintln!(
        "durable ingest: append p50 {append_p50_us:.2}µs vs full persist \
         {full_persist_ms:.1}ms per durability point; compaction mean {compact_mean_ms:.1}ms"
    );
    eprintln!(
        "gateway: admission overhead p50 {:.2}µs ({:.2}µs gated vs {:.2}µs direct); \
         storm shed {}/{}; coalesce {}/{} followers, {} execution(s)",
        svc_gated.p50_us - svc_direct.p50_us,
        svc_gated.p50_us,
        svc_direct.p50_us,
        chor.storm_shed,
        STORM_REQUESTS,
        chor.wave_followers,
        WAVE_REQUESTS,
        chor.wave_executions
    );
    eprintln!(
        "cache: warm hit p50 {:.2}µs vs uncached {:.2}µs ({:.1}x); Zipf replay p99 {:.2}µs \
         at {:.1}% result-hit rate ({} result hits / {} misses; candidates {} hits / {} \
         misses, {} negative)",
        cache.warm.p50_us,
        cache.uncached.p50_us,
        cache.uncached.p50_us / cache.warm.p50_us,
        cache.replay_p99_us,
        cache_hit_rate * 100.0,
        cache.result_hits,
        cache.result_misses,
        cache.candidate_hits,
        cache.candidate_misses,
        cache.negative_candidate_hits
    );
    eprintln!(
        "http: wire p50 {:.2}µs vs direct gateway {:.2}µs → {:.2}µs wire tax \
         ({} requests over one keep-alive connection)",
        http.wire.p50_us,
        http.direct.p50_us,
        http.wire.p50_us - http.direct.p50_us,
        http.requests_served
    );
}
