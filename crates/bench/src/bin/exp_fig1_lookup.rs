//! Experiment F1 — **Figure 1**: the Look Up word-cloud.
//!
//! The GUI renders `P_x` as a 3D word-cloud sized by frequency; this
//! binary emits the underlying data series (token, corpus count, edit
//! distance) for several sensitive query words.
//!
//! ```text
//! cargo run -p cryptext-bench --bin exp_fig1_lookup
//! ```

use cryptext_bench::{build_db, build_platform};
use cryptext_core::{look_up, LookupParams};

fn main() {
    let platform = build_platform(6_000, 20_230_101);
    let db = build_db(&platform);

    println!("# Figure 1 — Look Up word-cloud data (k = 1, d = 3)");
    println!();
    for query in [
        "vaccine",
        "democrats",
        "republicans",
        "suicide",
        "depression",
    ] {
        let hits = look_up(
            &db,
            query,
            LookupParams::paper_default()
                .perturbations_only()
                .observed(),
        )
        .expect("valid params");
        println!("## P_x for x = {query:?}  ({} perturbations)", hits.len());
        println!();
        println!("| token | count | distance |");
        println!("|-------|-------|----------|");
        for h in hits.iter().take(20) {
            println!("| {} | {} | {} |", h.token, h.count, h.distance);
        }
        println!();
    }
    let stats = db.stats();
    println!(
        "Database: {} unique tokens over {} H_1 sounds ({} occurrences).",
        stats.unique_tokens, stats.unique_sounds[1], stats.total_occurrences
    );
}
