//! Experiment A2 — the `k`/`d` parameter sweep behind the paper's
//! defaults (§III-B fixes `k = 1, d = 3` for the GUI).
//!
//! Over gold perturbation pairs from the simulated feed we measure, for
//! each `(k, d)`:
//!
//! * **recall** — fraction of gold `(original → perturbed)` pairs where
//!   Look Up on the original retrieves the perturbed spelling;
//! * **noise** — average number of *unrelated dictionary words* retrieved
//!   per query (false friends admitted by loose parameters).
//!
//! ```text
//! cargo run --release -p cryptext-bench --bin exp_param_sweep
//! ```

use cryptext_bench::{build_db, build_platform, pct, row};
use cryptext_core::{look_up, LookupParams};

fn main() {
    let platform = build_platform(6_000, 404);
    let db = build_db(&platform);

    // Gold pairs: every recorded perturbation in the feed.
    let mut gold: Vec<(String, String)> = Vec::new();
    for post in platform.posts() {
        for rec in &post.perturbations {
            gold.push((rec.original.to_string(), rec.perturbed.to_string()));
        }
    }
    gold.sort();
    gold.dedup();
    println!(
        "# Parameter sweep — {} distinct gold perturbation pairs",
        gold.len()
    );
    println!();
    println!("| k | d | recall | avg unrelated words / query |");
    println!("|---|---|--------|------------------------------|");

    for k in 0..=2usize {
        for d in 0..=4usize {
            let mut recalled = 0usize;
            let mut unrelated = 0usize;
            let mut queries = 0usize;
            for (original, perturbed) in &gold {
                let hits = look_up(&db, original, LookupParams::new(k, d)).expect("lookup");
                queries += 1;
                if hits.iter().any(|h| &h.token == perturbed) {
                    recalled += 1;
                }
                unrelated += hits
                    .iter()
                    .filter(|h| h.is_english && !h.token.eq_ignore_ascii_case(original))
                    .count();
            }
            println!(
                "{}",
                row(&[
                    k.to_string(),
                    d.to_string(),
                    pct(recalled as f64 / queries.max(1) as f64),
                    format!("{:.2}", unrelated as f64 / queries.max(1) as f64),
                ])
            );
        }
    }
    println!();
    println!(
        "Expected shape: recall rises with d and is near-total by d = 3; \
         unrelated-word noise explodes as k shrinks and d grows. The \
         paper's default (k = 1, d = 3) sits at high recall with bounded \
         noise."
    );
}
