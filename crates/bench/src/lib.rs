//! # cryptext-bench
//!
//! Shared fixtures for the criterion benchmarks and the experiment
//! binaries that regenerate every table and figure of the paper
//! (see EXPERIMENTS.md at the workspace root for the index).

use cryptext_core::{CrypText, TokenDatabase};
use cryptext_corpus::CorpusConfig;
use cryptext_stream::{SocialPlatform, StreamConfig};

/// Simulate a platform feed with `n_posts` posts.
pub fn build_platform(n_posts: usize, seed: u64) -> SocialPlatform {
    SocialPlatform::simulate(StreamConfig {
        n_posts,
        seed,
        ..StreamConfig::default()
    })
}

/// Simulate a platform with custom content characteristics.
pub fn build_platform_with(n_posts: usize, seed: u64, corpus: CorpusConfig) -> SocialPlatform {
    SocialPlatform::simulate(StreamConfig {
        n_posts,
        seed,
        corpus,
        ..StreamConfig::default()
    })
}

/// Build a lexicon-seeded token database from a platform feed (what the
/// crawler produces in production).
pub fn build_db(platform: &SocialPlatform) -> TokenDatabase {
    let mut db = TokenDatabase::with_lexicon();
    for post in platform.posts() {
        db.ingest_text(&post.text);
        // Gold clean text doubles as LM training material.
        db.record_clean_sentence(&clean_text_of(post));
    }
    db
}

fn clean_text_of(post: &cryptext_stream::Post) -> String {
    // Reverse the recorded perturbations to recover the clean sentence.
    let mut text = post.text.clone();
    for rec in &post.perturbations {
        text = text.replace(&rec.perturbed, &rec.original);
    }
    text
}

/// Assemble a full CrypText system over a fresh simulated feed.
pub fn build_cryptext(n_posts: usize, seed: u64) -> CrypText {
    let platform = build_platform(n_posts, seed);
    CrypText::new(build_db(&platform))
}

/// Render a markdown table row.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

/// Render a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_compose() {
        let cx = build_cryptext(200, 1);
        let stats = cx.database().stats();
        assert!(stats.unique_tokens > 400, "lexicon + feed tokens");
        assert!(stats.total_occurrences > 500);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(row(&["a".into(), "b".into()]), "| a | b |");
        assert_eq!(pct(0.675), "67.5%");
    }
}
