//! Tokenizer and language-model throughput: both sit on the ingest and
//! normalization hot paths.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use cryptext_lm::NgramLm;

const POST: &str = "the demoRATs and RepubLIEcans keep fighting about the vacc1ne mandate \
                    while @users share https://example.com/article links :( so sad #politics";

fn bench_tokenizer_lm(c: &mut Criterion) {
    let mut group = c.benchmark_group("tokenizer");
    group.throughput(Throughput::Bytes(POST.len() as u64));
    group.bench_function("tokenize_social_post", |b| {
        b.iter(|| black_box(cryptext_tokenizer::tokenize(black_box(POST))))
    });
    group.bench_function("words_only", |b| {
        b.iter(|| black_box(cryptext_tokenizer::words(black_box(POST))))
    });
    group.finish();

    let sentences: Vec<String> = (0..500)
        .map(|i| {
            format!(
                "the {} mandate was discussed by {} people online today",
                if i % 2 == 0 { "vaccine" } else { "election" },
                i % 97
            )
        })
        .collect();
    let lm = NgramLm::train(sentences.iter().map(|s| s.as_str()));

    let mut group = c.benchmark_group("lm");
    group.bench_function("coherency_score", |b| {
        b.iter(|| black_box(lm.coherency(black_box("vaccine"), &["the"], &["mandate", "was"])))
    });
    group.bench_function("perplexity_10_tokens", |b| {
        let toks = [
            "the",
            "vaccine",
            "mandate",
            "was",
            "discussed",
            "by",
            "many",
            "people",
            "online",
            "today",
        ];
        b.iter(|| black_box(lm.perplexity(&toks)))
    });
    group.bench_function("train_500_sentences", |b| {
        b.iter(|| black_box(NgramLm::train(sentences.iter().map(|s| s.as_str()))))
    });
    group.finish();
}

criterion_group!(benches, bench_tokenizer_lm);
criterion_main!(benches);
