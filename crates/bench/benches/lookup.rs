//! Look Up latency: cold queries against the database vs cache-served
//! queries through the service facade (the Redis-role measurement that
//! justifies Fig. 5's cache box).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use cryptext_bench::{build_db, build_platform};
use cryptext_core::service::{CryptextService, ServiceConfig};
use cryptext_core::{look_up, look_up_naive, look_up_with, CrypText, LookupParams, LookupScratch};

fn bench_lookup(c: &mut Criterion) {
    let platform = build_platform(4_000, 7);
    let db = build_db(&platform);
    let queries = ["democrats", "republicans", "vaccine", "suicide", "muslim"];

    let mut group = c.benchmark_group("lookup");
    group.bench_function("db_cold_k1_d3", |b| {
        b.iter(|| {
            for q in queries {
                black_box(look_up(&db, black_box(q), LookupParams::paper_default()).unwrap());
            }
        })
    });
    // The pre-optimization path, kept as the regression baseline: the
    // read-optimized engine above must beat this by a wide margin in the
    // same run (see BENCH_lookup.json for the tracked ratio).
    group.bench_function("db_cold_k1_d3_naive", |b| {
        b.iter(|| {
            for q in queries {
                black_box(look_up_naive(&db, black_box(q), LookupParams::paper_default()).unwrap());
            }
        })
    });
    group.bench_function("db_cold_k1_d3_scratch_reuse", |b| {
        let mut scratch = LookupScratch::new();
        b.iter(|| {
            for q in queries {
                black_box(
                    look_up_with(
                        &db,
                        black_box(q),
                        LookupParams::paper_default(),
                        &mut scratch,
                    )
                    .unwrap(),
                );
            }
        })
    });
    group.bench_function("db_cold_k0_d4_worstcase", |b| {
        b.iter(|| {
            for q in queries {
                black_box(look_up(&db, black_box(q), LookupParams::new(0, 4)).unwrap());
            }
        })
    });

    let platform2 = build_platform(4_000, 7);
    let service = CryptextService::new(
        CrypText::new(build_db(&platform2)),
        ServiceConfig {
            rate_limit_per_minute: u32::MAX,
            ..ServiceConfig::default()
        },
        cryptext_common::system_clock(),
    );
    let token = service.issue_token("bench");
    // Warm the cache.
    for q in queries {
        service
            .look_up(&token, q, LookupParams::paper_default())
            .unwrap();
    }
    group.bench_function("service_cached", |b| {
        b.iter(|| {
            for q in queries {
                black_box(
                    service
                        .look_up(&token, black_box(q), LookupParams::paper_default())
                        .unwrap(),
                );
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_lookup);
criterion_main!(benches);
