//! Phonetic-encoding microbenchmarks: classic vs customized Soundex.
//! The encoder sits on the ingest hot path (every token, every level).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use cryptext_phonetics::{classic_soundex, CustomSoundex};

const TOKENS: &[&str] = &[
    "the",
    "democrats",
    "repubLIEcans",
    "republic@@ns",
    "suic1de",
    "internationalization",
    "dem0cr@ts",
    "porrrrn",
    "mus-lim",
    "vãccine",
];

fn bench_soundex(c: &mut Criterion) {
    let mut group = c.benchmark_group("soundex");

    group.bench_function("classic", |b| {
        b.iter(|| {
            for t in TOKENS {
                black_box(classic_soundex(black_box(t)));
            }
        })
    });

    for k in 0..=2usize {
        let sx = CustomSoundex::new(k);
        group.bench_function(format!("custom_k{k}_encode"), |b| {
            b.iter(|| {
                for t in TOKENS {
                    black_box(sx.encode(black_box(t)));
                }
            })
        });
    }

    let sx = CustomSoundex::new(1);
    group.bench_function("custom_k1_encode_all", |b| {
        b.iter(|| {
            for t in TOKENS {
                black_box(sx.encode_all(black_box(t)));
            }
        })
    });

    group.finish();
}

criterion_group!(benches, bench_soundex);
criterion_main!(benches);
