//! End-to-end function benchmarks: Look Up → Normalize → Perturb on a
//! realistic database, plus classifier prediction (the Fig. 4 inner loop)
//! and corpus ingest throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use cryptext_bench::{build_db, build_platform};
use cryptext_core::{
    CrypText, NormalizeParams, NormalizeScratch, Normalizer, PerturbParams, TokenDatabase,
};
use cryptext_ml::{Classifier, Example, NaiveBayes};

fn bench_pipeline(c: &mut Criterion) {
    let platform = build_platform(4_000, 3);
    let cx = CrypText::new(build_db(&platform));

    let perturbed_text = "Biden belongs to the demokRATs and the vacc1ne mandate is a scam";
    let clean_text = "the democrats and republicans keep fighting about the vaccine mandate";

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(30);
    group.bench_function("normalize_sentence", |b| {
        b.iter(|| {
            black_box(
                cx.normalize(black_box(perturbed_text), NormalizeParams::default())
                    .unwrap(),
            )
        })
    });
    group.bench_function("normalize_sentence_scratch", |b| {
        let normalizer = Normalizer::new(cx.language_model());
        let mut scratch = NormalizeScratch::new();
        b.iter(|| {
            black_box(
                normalizer
                    .normalize_with(
                        cx.database(),
                        black_box(perturbed_text),
                        NormalizeParams::default(),
                        &mut scratch,
                    )
                    .unwrap(),
            )
        })
    });
    group.bench_function("normalize_sentence_naive", |b| {
        let normalizer = Normalizer::new(cx.language_model());
        b.iter(|| {
            black_box(
                normalizer
                    .normalize_naive(
                        cx.database(),
                        black_box(perturbed_text),
                        NormalizeParams::default(),
                    )
                    .unwrap(),
            )
        })
    });
    group.bench_function("perturb_sentence_r50", |b| {
        b.iter(|| {
            black_box(
                cx.perturb(black_box(clean_text), PerturbParams::with_ratio(0.5))
                    .unwrap(),
            )
        })
    });

    group.bench_function("ingest_100_posts", |b| {
        let texts: Vec<&str> = platform
            .posts()
            .iter()
            .take(100)
            .map(|p| p.text.as_str())
            .collect();
        b.iter(|| {
            let mut db = TokenDatabase::in_memory();
            for t in &texts {
                db.ingest_text(t);
            }
            black_box(db.stats().unique_tokens)
        })
    });

    // Classifier inner loop.
    let examples: Vec<Example> = platform
        .posts()
        .iter()
        .take(1_000)
        .map(|p| Example::new(p.text.clone(), usize::from(p.toxic)))
        .collect();
    let nb = NaiveBayes::train(&examples, 2, 1.0);
    group.bench_function("nb_predict", |b| {
        b.iter(|| black_box(nb.predict(black_box(perturbed_text))))
    });
    group.bench_function("nb_train_1k", |b| {
        b.iter(|| black_box(NaiveBayes::train(black_box(&examples), 2, 1.0)))
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
