//! Edit-distance microbenchmarks: the bounded band DP is the SMS filter's
//! hot loop — confirm it beats the full DP at the paper's default d = 3.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use cryptext_editdist::{damerau_osa, levenshtein, levenshtein_bounded};

fn bench_editdist(c: &mut Criterion) {
    let mut group = c.benchmark_group("editdist");
    let pairs = [
        ("republicans", "repubLIEcans"),
        ("democrats", "demorcats"),
        ("internationalization", "internationalisation"),
        ("depression", "depresxion"),
        ("completely", "different"),
    ];

    group.bench_function("full", |b| {
        b.iter(|| {
            for (x, y) in pairs {
                black_box(levenshtein(black_box(x), black_box(y)));
            }
        })
    });

    group.bench_function("bounded_d3", |b| {
        b.iter(|| {
            for (x, y) in pairs {
                black_box(levenshtein_bounded(black_box(x), black_box(y), 3));
            }
        })
    });

    group.bench_function("bounded_d1", |b| {
        b.iter(|| {
            for (x, y) in pairs {
                black_box(levenshtein_bounded(black_box(x), black_box(y), 1));
            }
        })
    });

    group.bench_function("damerau_osa", |b| {
        b.iter(|| {
            for (x, y) in pairs {
                black_box(damerau_osa(black_box(x), black_box(y)));
            }
        })
    });

    // Long-string early exit: bound prunes to near-nothing.
    let long_a = "perturbation".repeat(20);
    let long_b = "perturbated!".repeat(20);
    group.bench_function("long_full", |b| {
        b.iter(|| black_box(levenshtein(black_box(&long_a), black_box(&long_b))))
    });
    group.bench_function("long_bounded_d3", |b| {
        b.iter(|| {
            black_box(levenshtein_bounded(
                black_box(&long_a),
                black_box(&long_b),
                3,
            ))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_editdist);
criterion_main!(benches);
