//! Cache microbenchmarks: hit path, miss path, and eviction churn.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use cryptext_cache::{Cache, CacheConfig};
use cryptext_common::SimClock;

fn bench_cache(c: &mut Criterion) {
    let clock = Arc::new(SimClock::new(0));
    let cache: Cache<u64, u64> = Cache::new(
        CacheConfig {
            capacity: 10_000,
            default_ttl_ms: Some(60_000),
            shards: 8,
        },
        clock,
    );
    for i in 0..5_000u64 {
        cache.insert(i, i * 2);
    }

    let mut group = c.benchmark_group("cache");
    group.bench_function("get_hit", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 5_000;
            black_box(cache.get(&i))
        })
    });
    group.bench_function("get_miss", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(cache.get(&(1_000_000 + i)))
        })
    });
    group.bench_function("insert_fresh", |b| {
        let mut i = 100_000u64;
        b.iter(|| {
            i += 1;
            cache.insert(black_box(i), i);
        })
    });

    // Eviction churn: capacity-16 cache under rotating keys.
    let clock = Arc::new(SimClock::new(0));
    let tiny: Cache<u64, u64> = Cache::new(
        CacheConfig {
            capacity: 16,
            default_ttl_ms: None,
            shards: 1,
        },
        clock,
    );
    group.bench_function("insert_evicting", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            tiny.insert(black_box(i), i);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cache);
criterion_main!(benches);
