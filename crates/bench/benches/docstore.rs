//! Embedded document-store benchmarks: insert throughput (with and
//! without WAL), indexed vs scan queries, and recovery time.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use cryptext_docstore::{Database, DbOptions, Document, Filter};

fn seed_doc(i: usize) -> Document {
    Document::new()
        .with("token", format!("token{i}"))
        .with("codes", vec![format!("C{:03}", i % 97)])
        .with("count", (i % 13) as i64)
}

fn bench_docstore(c: &mut Criterion) {
    let mut group = c.benchmark_group("docstore");
    group.sample_size(20);

    group.bench_function("insert_1k_memory", |b| {
        b.iter_batched(
            || {
                let db = Database::in_memory();
                db.create_collection("t").unwrap();
                db.create_index("t", "codes").unwrap();
                db
            },
            |db| {
                for i in 0..1_000 {
                    db.insert("t", seed_doc(i)).unwrap();
                }
                black_box(db.len("t").unwrap())
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("insert_1k_wal", |b| {
        let dir = std::env::temp_dir().join(format!("cxbench-wal-{}", std::process::id()));
        b.iter_batched(
            || {
                let _ = std::fs::remove_dir_all(&dir);
                let db = Database::open(&dir, DbOptions::default()).unwrap();
                db.create_collection("t").unwrap();
                db.create_index("t", "codes").unwrap();
                db
            },
            |db| {
                for i in 0..1_000 {
                    db.insert("t", seed_doc(i)).unwrap();
                }
                black_box(db.len("t").unwrap())
            },
            BatchSize::SmallInput,
        );
        let _ = std::fs::remove_dir_all(&dir);
    });

    // Query benchmarks on a prepared store.
    let indexed = Database::in_memory();
    indexed.create_collection("t").unwrap();
    indexed.create_index("t", "codes").unwrap();
    let unindexed = Database::in_memory();
    unindexed.create_collection("t").unwrap();
    for i in 0..10_000 {
        indexed.insert("t", seed_doc(i)).unwrap();
        unindexed.insert("t", seed_doc(i)).unwrap();
    }
    group.bench_function("find_indexed_10k", |b| {
        b.iter(|| black_box(indexed.find("t", &Filter::eq("codes", "C042")).unwrap()))
    });
    group.bench_function("find_scan_10k", |b| {
        b.iter(|| black_box(unindexed.find("t", &Filter::eq("codes", "C042")).unwrap()))
    });

    // Recovery: replay a 5k-op WAL.
    let dir = std::env::temp_dir().join(format!("cxbench-recover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let db = Database::open(&dir, DbOptions::default()).unwrap();
        db.create_collection("t").unwrap();
        db.create_index("t", "codes").unwrap();
        for i in 0..5_000 {
            db.insert("t", seed_doc(i)).unwrap();
        }
    }
    group.bench_function("recover_5k_wal", |b| {
        b.iter(|| {
            let db = Database::open(&dir, DbOptions::default()).unwrap();
            black_box(db.len("t").unwrap())
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_docstore);
criterion_main!(benches);
