//! Optimal String Alignment (restricted Damerau–Levenshtein) distance.

/// OSA distance: Levenshtein plus adjacent transposition as a single edit,
/// with the restriction that no substring is edited twice.
///
/// TextBugger's "swap" operation (`democrats → demorcats`) is one OSA edit
/// but two Levenshtein edits; the ablation experiments compare retrieval
/// quality under both metrics.
pub fn damerau_osa(a: &str, b: &str) -> usize {
    if a == b {
        return 0;
    }
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }

    // Three rolling rows: i-2, i-1, i.
    let m = b.len();
    let mut prev2: Vec<usize> = vec![0; m + 1];
    let mut prev: Vec<usize> = (0..=m).collect();
    let mut curr: Vec<usize> = vec![0; m + 1];

    for i in 1..=a.len() {
        curr[0] = i;
        for j in 1..=m {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            let mut best = (prev[j - 1] + cost) // substitute
                .min(prev[j] + 1) // delete
                .min(curr[j - 1] + 1); // insert
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                best = best.min(prev2[j - 2] + 1); // transpose
            }
            curr[j] = best;
        }
        std::mem::swap(&mut prev2, &mut prev);
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transposition_is_one_edit() {
        assert_eq!(damerau_osa("democrats", "demorcats"), 1, "cr → rc swap");
        assert_eq!(damerau_osa("ab", "ba"), 1);
        assert_eq!(damerau_osa("abcdef", "abcdfe"), 1);
    }

    #[test]
    fn matches_levenshtein_without_transpositions() {
        assert_eq!(damerau_osa("kitten", "sitting"), 3);
        assert_eq!(damerau_osa("", "abc"), 3);
        assert_eq!(damerau_osa("abc", ""), 3);
        assert_eq!(damerau_osa("same", "same"), 0);
    }

    #[test]
    fn osa_restriction_classic_case() {
        // OSA("ca", "abc") = 3 (the restricted variant cannot reuse the
        // transposed substring), while unrestricted Damerau would give 2.
        assert_eq!(damerau_osa("ca", "abc"), 3);
    }

    #[test]
    fn symmetric() {
        for (a, b) in [("abcd", "acbd"), ("republicans", "repulbicans"), ("x", "")] {
            assert_eq!(damerau_osa(a, b), damerau_osa(b, a));
        }
    }

    #[test]
    fn unicode_transposition() {
        assert_eq!(damerau_osa("naïve", "naveï"), 2);
        assert_eq!(damerau_osa("héllo", "hlélo"), 1);
    }
}
