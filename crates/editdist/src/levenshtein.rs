//! Levenshtein distance: full and bounded variants.
//!
//! The Look Up hot path calls [`levenshtein_bounded_scratch`] once per
//! bucket candidate; it reuses caller-provided buffers ([`EditScratch`])
//! and takes an ASCII byte-slice fast path, so the per-candidate cost is
//! pure DP work with zero heap allocation after warm-up.

/// Reusable working memory for [`levenshtein_bounded_scratch`].
///
/// One instance per thread (or per bulk request) amortizes the two DP rows
/// and, for non-ASCII inputs, the char-decoding buffers across millions of
/// candidate comparisons.
#[derive(Debug, Default, Clone)]
pub struct EditScratch {
    prev: Vec<u32>,
    curr: Vec<u32>,
    a_chars: Vec<char>,
    b_chars: Vec<char>,
}

impl EditScratch {
    /// Fresh scratch space (allocates lazily on first use).
    pub fn new() -> Self {
        EditScratch::default()
    }
}

/// Bounded Levenshtein over strings using caller-provided scratch buffers.
///
/// Semantically identical to [`levenshtein_bounded`] — returns `Some(d)`
/// when `d = lev(a, b) <= max`, else `None` — but allocation-free per call:
/// ASCII inputs run the banded DP directly over bytes, and non-ASCII inputs
/// decode into reusable char buffers inside `scratch`.
pub fn levenshtein_bounded_scratch(
    a: &str,
    b: &str,
    max: usize,
    scratch: &mut EditScratch,
) -> Option<usize> {
    if a == b {
        return Some(0);
    }
    if a.is_ascii() && b.is_ascii() {
        let (a, b) = trim_common_affixes(a.as_bytes(), b.as_bytes());
        return banded_dp(a, b, max, &mut scratch.prev, &mut scratch.curr);
    }
    scratch.a_chars.clear();
    scratch.a_chars.extend(a.chars());
    scratch.b_chars.clear();
    scratch.b_chars.extend(b.chars());
    let (a, b) = trim_common_affixes(&scratch.a_chars, &scratch.b_chars);
    banded_dp(a, b, max, &mut scratch.prev, &mut scratch.curr)
}

/// Strip the longest common prefix and suffix — neither contributes edits,
/// and real-world perturbations share most of their characters with the
/// clean form, so this usually collapses the DP to a few cells.
#[inline]
fn trim_common_affixes<'s, T: Copy + PartialEq>(
    mut a: &'s [T],
    mut b: &'s [T],
) -> (&'s [T], &'s [T]) {
    let prefix = a.iter().zip(b).take_while(|(x, y)| x == y).count();
    a = &a[prefix..];
    b = &b[prefix..];
    let suffix = a
        .iter()
        .rev()
        .zip(b.iter().rev())
        .take_while(|(x, y)| x == y)
        .count();
    (&a[..a.len() - suffix], &b[..b.len() - suffix])
}

/// The banded two-row DP shared by the scratch and allocating entry points.
/// `prev`/`curr` are resized (not reallocated once warm) to `min(n,m)+1`.
fn banded_dp<T: Copy + PartialEq>(
    a: &[T],
    b: &[T],
    max: usize,
    prev: &mut Vec<u32>,
    curr: &mut Vec<u32>,
) -> Option<usize> {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if long.len() - short.len() > max {
        return None;
    }
    if short.is_empty() {
        return (long.len() <= max).then_some(long.len());
    }
    if short.len() == 1 {
        // Closed form: align the lone element against `long` — one
        // substitution saved iff it occurs anywhere in `long`. After
        // affix trimming most real perturbation pairs land here.
        let hit = long.contains(&short[0]);
        let d = long.len() - usize::from(hit);
        return (d <= max).then_some(d);
    }

    const INF: u32 = u32::MAX / 2;
    let n = short.len();
    prev.clear();
    prev.resize(n + 1, INF);
    curr.clear();
    curr.resize(n + 1, INF);
    for (j, p) in prev.iter_mut().enumerate().take(max.min(n) + 1) {
        *p = j as u32;
    }

    for (i, &lc) in long.iter().enumerate() {
        let row = i + 1;
        let lo = row.saturating_sub(max);
        let hi = (row + max).min(n);
        if lo > hi {
            return None;
        }
        curr[lo.saturating_sub(1)] = INF;
        let mut row_min = INF;
        for j in lo..=hi {
            let val = if j == 0 {
                row as u32
            } else {
                let cost = u32::from(lc != short[j - 1]);
                let diag = prev[j - 1].saturating_add(cost);
                let up = prev[j].saturating_add(1);
                let left = curr[j - 1].saturating_add(1);
                diag.min(up).min(left)
            };
            curr[j] = val;
            row_min = row_min.min(val);
        }
        if row_min as usize > max {
            return None;
        }
        if lo > 0 {
            curr[lo - 1] = INF;
        }
        if hi < n {
            curr[hi + 1] = INF;
        }
        std::mem::swap(prev, curr);
    }
    let d = prev[n] as usize;
    (d <= max).then_some(d)
}

/// Classic Levenshtein distance over Unicode scalar values, using the
/// two-row dynamic program (`O(n·m)` time, `O(min(n, m))` space).
pub fn levenshtein(a: &str, b: &str) -> usize {
    // Fast paths.
    if a == b {
        return 0;
    }
    let a_chars: Vec<char> = a.chars().collect();
    let b_chars: Vec<char> = b.chars().collect();
    levenshtein_chars(&a_chars, &b_chars)
}

/// Levenshtein over pre-split char slices; exposed for callers that reuse
/// the decomposition (the Look Up hot path decomposes the query once).
pub fn levenshtein_chars(a: &[char], b: &[char]) -> usize {
    // Keep the shorter string in the inner dimension for less memory.
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut curr: Vec<usize> = vec![0; short.len() + 1];
    for (i, &lc) in long.iter().enumerate() {
        curr[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            curr[j + 1] = (prev[j] + cost) // substitute
                .min(prev[j + 1] + 1) // delete from long
                .min(curr[j] + 1); // insert into long
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[short.len()]
}

/// Bounded Levenshtein: returns `Some(d)` when `d = lev(a, b) <= max`, else
/// `None`.
///
/// Runs the DP restricted to a diagonal band of half-width `max`
/// (`O(max · min(n, m))`) and exits as soon as every cell in a row exceeds
/// the bound. This is the work-horse of SMS filtering: with the paper's
/// default `d = 3`, buckets of thousands of candidates are filtered with a
/// handful of band cells each.
pub fn levenshtein_bounded(a: &str, b: &str, max: usize) -> Option<usize> {
    if a == b {
        return Some(0);
    }
    let a_chars: Vec<char> = a.chars().collect();
    let b_chars: Vec<char> = b.chars().collect();
    levenshtein_bounded_chars(&a_chars, &b_chars, max)
}

/// Char-slice version of [`levenshtein_bounded`].
pub fn levenshtein_bounded_chars(a: &[char], b: &[char], max: usize) -> Option<usize> {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    // Length difference is a lower bound on the distance.
    if long.len() - short.len() > max {
        return None;
    }
    if short.is_empty() {
        return (long.len() <= max).then_some(long.len());
    }

    const INF: usize = usize::MAX / 2;
    let n = short.len();
    let mut prev: Vec<usize> = vec![INF; n + 1];
    let mut curr: Vec<usize> = vec![INF; n + 1];
    // Row 0: distance from empty prefix of `long`.
    for (j, p) in prev.iter_mut().enumerate().take(max.min(n) + 1) {
        *p = j;
    }

    for (i, &lc) in long.iter().enumerate() {
        // Band for row i+1: columns where |(i+1) - j| <= max.
        let row = i + 1;
        let lo = row.saturating_sub(max);
        let hi = (row + max).min(n);
        if lo > hi {
            return None;
        }
        curr[lo.saturating_sub(1)] = INF; // left neighbour of band start
        let mut row_min = INF;
        for j in lo..=hi {
            let val = if j == 0 {
                row
            } else {
                let cost = usize::from(lc != short[j - 1]);
                let diag = prev[j - 1].saturating_add(cost);
                let up = prev[j].saturating_add(1);
                let left = curr[j - 1].saturating_add(1);
                diag.min(up).min(left)
            };
            curr[j] = val;
            row_min = row_min.min(val);
        }
        if row_min > max {
            return None;
        }
        // Reset cells outside next band to INF lazily via swap pattern:
        // cells outside [lo, hi] in `curr` may hold stale values; clear the
        // immediate neighbours that the next row can read.
        if lo > 0 {
            curr[lo - 1] = INF;
        }
        if hi < n {
            curr[hi + 1] = INF;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    let d = prev[n];
    (d <= max).then_some(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_cases() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "abc"), 3);
    }

    #[test]
    fn paper_perturbation_distances() {
        // §III-B: repubLIEcans is distance 1 (case-insensitive) from republicans.
        assert_eq!(levenshtein("republicans", "republiecans"), 1);
        assert_eq!(levenshtein("republicans", "republic@@ns"), 2);
        assert_eq!(levenshtein("democrats", "demokrats"), 1);
        assert_eq!(
            levenshtein("democrats", "demorcats"),
            2,
            "swap = 2 plain edits"
        );
        assert_eq!(levenshtein("suicide", "suic1de"), 1);
    }

    #[test]
    fn unicode_counts_scalars_not_bytes() {
        // Cyrillic а for Latin a: one substitution, though 2 bytes differ.
        assert_eq!(levenshtein("paypal", "p\u{0430}ypal"), 1);
        assert_eq!(levenshtein("café", "cafe"), 1);
    }

    #[test]
    fn bounded_exact_values() {
        assert_eq!(levenshtein_bounded("kitten", "sitting", 3), Some(3));
        assert_eq!(levenshtein_bounded("kitten", "sitting", 2), None);
        assert_eq!(levenshtein_bounded("abc", "abc", 0), Some(0));
        assert_eq!(levenshtein_bounded("abc", "abd", 0), None);
    }

    #[test]
    fn bounded_length_gap_shortcut() {
        // Length difference alone exceeds the bound — must not run the DP.
        assert_eq!(levenshtein_bounded("a", "aaaaaaaaaa", 3), None);
        assert_eq!(levenshtein_bounded("", "abcd", 3), None);
        assert_eq!(levenshtein_bounded("", "abc", 3), Some(3));
    }

    #[test]
    fn bounded_zero_max() {
        assert_eq!(levenshtein_bounded("same", "same", 0), Some(0));
        assert_eq!(levenshtein_bounded("same", "sane", 0), None);
    }

    #[test]
    fn bounded_large_max_equals_full() {
        let pairs = [
            ("democrats", "republicans"),
            ("abcdef", "fedcba"),
            ("aaa", "bbbb"),
        ];
        for (a, b) in pairs {
            assert_eq!(levenshtein_bounded(a, b, 100), Some(levenshtein(a, b)));
        }
    }

    #[test]
    fn char_slice_api_matches_str_api() {
        let a: Vec<char> = "perturbation".chars().collect();
        let b: Vec<char> = "perturbaton".chars().collect();
        assert_eq!(
            levenshtein_chars(&a, &b),
            levenshtein("perturbation", "perturbaton")
        );
        assert_eq!(
            levenshtein_bounded_chars(&a, &b, 2),
            levenshtein_bounded("perturbation", "perturbaton", 2)
        );
    }

    #[test]
    fn scratch_variant_matches_allocating_variant() {
        let mut scratch = EditScratch::new();
        let pairs = [
            ("kitten", "sitting"),
            ("republicans", "republic@@ns"),
            ("café", "cafe"),
            ("p\u{0430}ypal", "paypal"),
            ("", "abc"),
            ("same", "same"),
            ("a", "aaaaaaaaaa"),
        ];
        for (a, b) in pairs {
            for max in 0..6 {
                assert_eq!(
                    levenshtein_bounded_scratch(a, b, max, &mut scratch),
                    levenshtein_bounded(a, b, max),
                    "{a:?} vs {b:?} at max {max}"
                );
            }
        }
    }

    #[test]
    fn scratch_reuse_across_mixed_ascii_unicode_calls() {
        // Interleave ASCII and non-ASCII comparisons through one scratch to
        // catch stale-buffer bugs.
        let mut scratch = EditScratch::new();
        assert_eq!(
            levenshtein_bounded_scratch("abcdef", "abXdef", 3, &mut scratch),
            Some(1)
        );
        assert_eq!(
            levenshtein_bounded_scratch("naïve", "naive", 3, &mut scratch),
            Some(1)
        );
        assert_eq!(
            levenshtein_bounded_scratch("abc", "abc", 3, &mut scratch),
            Some(0)
        );
        assert_eq!(
            levenshtein_bounded_scratch("żółć", "zolc", 4, &mut scratch),
            Some(4)
        );
        assert_eq!(
            levenshtein_bounded_scratch("longerword", "cut", 3, &mut scratch),
            None
        );
    }

    #[test]
    fn asymmetric_lengths_both_orders() {
        assert_eq!(levenshtein("ab", "abcdef"), 4);
        assert_eq!(levenshtein("abcdef", "ab"), 4);
        assert_eq!(levenshtein_bounded("ab", "abcdef", 4), Some(4));
        assert_eq!(levenshtein_bounded("abcdef", "ab", 4), Some(4));
    }
}
