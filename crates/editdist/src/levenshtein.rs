//! Levenshtein distance: full and bounded variants.

/// Classic Levenshtein distance over Unicode scalar values, using the
/// two-row dynamic program (`O(n·m)` time, `O(min(n, m))` space).
pub fn levenshtein(a: &str, b: &str) -> usize {
    // Fast paths.
    if a == b {
        return 0;
    }
    let a_chars: Vec<char> = a.chars().collect();
    let b_chars: Vec<char> = b.chars().collect();
    levenshtein_chars(&a_chars, &b_chars)
}

/// Levenshtein over pre-split char slices; exposed for callers that reuse
/// the decomposition (the Look Up hot path decomposes the query once).
pub fn levenshtein_chars(a: &[char], b: &[char]) -> usize {
    // Keep the shorter string in the inner dimension for less memory.
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut curr: Vec<usize> = vec![0; short.len() + 1];
    for (i, &lc) in long.iter().enumerate() {
        curr[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            curr[j + 1] = (prev[j] + cost) // substitute
                .min(prev[j + 1] + 1) // delete from long
                .min(curr[j] + 1); // insert into long
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[short.len()]
}

/// Bounded Levenshtein: returns `Some(d)` when `d = lev(a, b) <= max`, else
/// `None`.
///
/// Runs the DP restricted to a diagonal band of half-width `max`
/// (`O(max · min(n, m))`) and exits as soon as every cell in a row exceeds
/// the bound. This is the work-horse of SMS filtering: with the paper's
/// default `d = 3`, buckets of thousands of candidates are filtered with a
/// handful of band cells each.
pub fn levenshtein_bounded(a: &str, b: &str, max: usize) -> Option<usize> {
    if a == b {
        return Some(0);
    }
    let a_chars: Vec<char> = a.chars().collect();
    let b_chars: Vec<char> = b.chars().collect();
    levenshtein_bounded_chars(&a_chars, &b_chars, max)
}

/// Char-slice version of [`levenshtein_bounded`].
pub fn levenshtein_bounded_chars(a: &[char], b: &[char], max: usize) -> Option<usize> {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    // Length difference is a lower bound on the distance.
    if long.len() - short.len() > max {
        return None;
    }
    if short.is_empty() {
        return (long.len() <= max).then_some(long.len());
    }

    const INF: usize = usize::MAX / 2;
    let n = short.len();
    let mut prev: Vec<usize> = vec![INF; n + 1];
    let mut curr: Vec<usize> = vec![INF; n + 1];
    // Row 0: distance from empty prefix of `long`.
    for (j, p) in prev.iter_mut().enumerate().take(max.min(n) + 1) {
        *p = j;
    }

    for (i, &lc) in long.iter().enumerate() {
        // Band for row i+1: columns where |(i+1) - j| <= max.
        let row = i + 1;
        let lo = row.saturating_sub(max);
        let hi = (row + max).min(n);
        if lo > hi {
            return None;
        }
        curr[lo.saturating_sub(1)] = INF; // left neighbour of band start
        let mut row_min = INF;
        for j in lo..=hi {
            let val = if j == 0 {
                row
            } else {
                let cost = usize::from(lc != short[j - 1]);
                let diag = prev[j - 1].saturating_add(cost);
                let up = prev[j].saturating_add(1);
                let left = curr[j - 1].saturating_add(1);
                diag.min(up).min(left)
            };
            curr[j] = val;
            row_min = row_min.min(val);
        }
        if row_min > max {
            return None;
        }
        // Reset cells outside next band to INF lazily via swap pattern:
        // cells outside [lo, hi] in `curr` may hold stale values; clear the
        // immediate neighbours that the next row can read.
        if lo > 0 {
            curr[lo - 1] = INF;
        }
        if hi < n {
            curr[hi + 1] = INF;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    let d = prev[n];
    (d <= max).then_some(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_cases() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "abc"), 3);
    }

    #[test]
    fn paper_perturbation_distances() {
        // §III-B: repubLIEcans is distance 1 (case-insensitive) from republicans.
        assert_eq!(levenshtein("republicans", "republiecans"), 1);
        assert_eq!(levenshtein("republicans", "republic@@ns"), 2);
        assert_eq!(levenshtein("democrats", "demokrats"), 1);
        assert_eq!(levenshtein("democrats", "demorcats"), 2, "swap = 2 plain edits");
        assert_eq!(levenshtein("suicide", "suic1de"), 1);
    }

    #[test]
    fn unicode_counts_scalars_not_bytes() {
        // Cyrillic а for Latin a: one substitution, though 2 bytes differ.
        assert_eq!(levenshtein("paypal", "p\u{0430}ypal"), 1);
        assert_eq!(levenshtein("café", "cafe"), 1);
    }

    #[test]
    fn bounded_exact_values() {
        assert_eq!(levenshtein_bounded("kitten", "sitting", 3), Some(3));
        assert_eq!(levenshtein_bounded("kitten", "sitting", 2), None);
        assert_eq!(levenshtein_bounded("abc", "abc", 0), Some(0));
        assert_eq!(levenshtein_bounded("abc", "abd", 0), None);
    }

    #[test]
    fn bounded_length_gap_shortcut() {
        // Length difference alone exceeds the bound — must not run the DP.
        assert_eq!(levenshtein_bounded("a", "aaaaaaaaaa", 3), None);
        assert_eq!(levenshtein_bounded("", "abcd", 3), None);
        assert_eq!(levenshtein_bounded("", "abc", 3), Some(3));
    }

    #[test]
    fn bounded_zero_max() {
        assert_eq!(levenshtein_bounded("same", "same", 0), Some(0));
        assert_eq!(levenshtein_bounded("same", "sane", 0), None);
    }

    #[test]
    fn bounded_large_max_equals_full() {
        let pairs = [
            ("democrats", "republicans"),
            ("abcdef", "fedcba"),
            ("aaa", "bbbb"),
        ];
        for (a, b) in pairs {
            assert_eq!(levenshtein_bounded(a, b, 100), Some(levenshtein(a, b)));
        }
    }

    #[test]
    fn char_slice_api_matches_str_api() {
        let a: Vec<char> = "perturbation".chars().collect();
        let b: Vec<char> = "perturbaton".chars().collect();
        assert_eq!(levenshtein_chars(&a, &b), levenshtein("perturbation", "perturbaton"));
        assert_eq!(
            levenshtein_bounded_chars(&a, &b, 2),
            levenshtein_bounded("perturbation", "perturbaton", 2)
        );
    }

    #[test]
    fn asymmetric_lengths_both_orders() {
        assert_eq!(levenshtein("ab", "abcdef"), 4);
        assert_eq!(levenshtein("abcdef", "ab"), 4);
        assert_eq!(levenshtein_bounded("ab", "abcdef", 4), Some(4));
        assert_eq!(levenshtein_bounded("abcdef", "ab", 4), Some(4));
    }
}
