//! Levenshtein distance: full and bounded variants.
//!
//! The Look Up hot path calls [`levenshtein_bounded_scratch`] once per
//! bucket candidate; it reuses caller-provided buffers ([`EditScratch`])
//! and takes an ASCII byte-slice fast path, so the per-candidate cost is
//! pure DP work with zero heap allocation after warm-up. ASCII pairs whose
//! shorter side fits in a machine word after common-affix trimming run
//! [`myers_ascii`] — Myers' bit-parallel algorithm, `O(n)` single-word
//! operations instead of `O(d·n)` DP cells — with the banded DP kept as
//! the fallback (long or non-ASCII inputs) and as the differential
//! reference in tests.

/// Reusable working memory for [`levenshtein_bounded_scratch`].
///
/// One instance per thread (or per bulk request) amortizes the two DP rows,
/// the Myers pattern-bitmap table, and, for non-ASCII inputs, the
/// char-decoding buffers across millions of candidate comparisons.
#[derive(Debug, Default, Clone)]
pub struct EditScratch {
    prev: Vec<u32>,
    curr: Vec<u32>,
    a_chars: Vec<char>,
    b_chars: Vec<char>,
    /// 128-entry `Eq` bitmap for [`myers_ascii`], indexed by ASCII byte.
    /// Entries touched by a pattern are zeroed again after each call, so
    /// the table never needs a full wipe.
    peq: Vec<u64>,
}

impl EditScratch {
    /// Fresh scratch space (allocates lazily on first use).
    pub fn new() -> Self {
        EditScratch::default()
    }
}

/// Bounded Levenshtein over strings using caller-provided scratch buffers.
///
/// Semantically identical to [`levenshtein_bounded`] — returns `Some(d)`
/// when `d = lev(a, b) <= max`, else `None` — but allocation-free per call:
/// ASCII inputs run bit-parallel [`myers_ascii`] (or the banded DP beyond
/// 64 chars) directly over bytes, and non-ASCII inputs decode into reusable
/// char buffers inside `scratch`.
pub fn levenshtein_bounded_scratch(
    a: &str,
    b: &str,
    max: usize,
    scratch: &mut EditScratch,
) -> Option<usize> {
    if a == b {
        return Some(0);
    }
    if a.is_ascii() && b.is_ascii() {
        let (a, b) = trim_common_affixes(a.as_bytes(), b.as_bytes());
        return bounded_ascii(a, b, max, scratch);
    }
    scratch.a_chars.clear();
    scratch.a_chars.extend(a.chars());
    scratch.b_chars.clear();
    scratch.b_chars.extend(b.chars());
    let (a, b) = trim_common_affixes(&scratch.a_chars, &scratch.b_chars);
    banded_dp(a, b, max, &mut scratch.prev, &mut scratch.curr)
}

/// The ASCII dispatcher behind [`levenshtein_bounded_scratch`]: shares the
/// length-gap / empty / single-char closed forms with [`banded_dp`], then
/// routes word-sized patterns to [`myers_ascii`] and everything else to the
/// banded DP.
fn bounded_ascii(a: &[u8], b: &[u8], max: usize, scratch: &mut EditScratch) -> Option<usize> {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if long.len() - short.len() > max {
        return None;
    }
    if short.is_empty() {
        return (long.len() <= max).then_some(long.len());
    }
    if short.len() == 1 {
        let hit = long.contains(&short[0]);
        let d = long.len() - usize::from(hit);
        return (d <= max).then_some(d);
    }
    if short.len() <= 64 {
        let d = myers_ascii_impl(short, long, scratch);
        return (d <= max).then_some(d);
    }
    banded_dp(short, long, max, &mut scratch.prev, &mut scratch.curr)
}

/// Myers' bit-parallel Levenshtein distance (the 1999 `O(⌈m/w⌉·n)`
/// algorithm, single-word case): exact edit distance between an ASCII
/// `pattern` of length `1..=64` and an ASCII `text`, in one pass over
/// `text` with a constant number of word operations per byte.
///
/// The pattern's `Eq` bitmaps live in `scratch` (128 lazily-allocated
/// entries); only the entries a pattern actually touches are set and then
/// cleared, so reusing one scratch across millions of calls never rescans
/// the table.
///
/// # Panics
///
/// Panics when `pattern.len()` is outside `1..=64` or either input holds a
/// non-ASCII byte. Both are validated **before** any scratch state is
/// touched, so a rejected call can never poison the reusable bitmaps
/// (enforced in release builds too; the internal hot path skips the scans
/// because [`levenshtein_bounded_scratch`] guarantees the preconditions).
pub fn myers_ascii(pattern: &[u8], text: &[u8], scratch: &mut EditScratch) -> usize {
    assert!(
        (1..=64).contains(&pattern.len()),
        "pattern must fit one 64-bit word"
    );
    assert!(
        pattern.is_ascii() && text.is_ascii(),
        "inputs must be ASCII"
    );
    myers_ascii_impl(pattern, text, scratch)
}

/// [`myers_ascii`] without the precondition scans, for callers that have
/// already guaranteed ASCII word-sized inputs.
fn myers_ascii_impl(pattern: &[u8], text: &[u8], scratch: &mut EditScratch) -> usize {
    let m = pattern.len();
    debug_assert!((1..=64).contains(&m), "pattern must fit one word");
    debug_assert!(pattern.is_ascii() && text.is_ascii());
    let peq = &mut scratch.peq;
    if peq.is_empty() {
        peq.resize(128, 0);
    }
    for (i, &c) in pattern.iter().enumerate() {
        peq[c as usize] |= 1u64 << i;
    }

    // Vertical positive/negative delta words; score tracks the DP cell
    // D[m][j] as j walks the text.
    let mut pv: u64 = if m == 64 { u64::MAX } else { (1u64 << m) - 1 };
    let mut mv: u64 = 0;
    let mut score = m;
    let high = 1u64 << (m - 1);
    for &c in text {
        let eq = peq[c as usize];
        let xv = eq | mv;
        let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
        let mut ph = mv | !(xh | pv);
        let mut mh = pv & xh;
        if ph & high != 0 {
            score += 1;
        }
        if mh & high != 0 {
            score -= 1;
        }
        ph = (ph << 1) | 1;
        mh <<= 1;
        pv = mh | !(xv | ph);
        mv = ph & xv;
    }

    for &c in pattern {
        peq[c as usize] = 0;
    }
    score
}

/// Strip the longest common prefix and suffix — neither contributes edits,
/// and real-world perturbations share most of their characters with the
/// clean form, so this usually collapses the DP to a few cells.
#[inline]
fn trim_common_affixes<'s, T: Copy + PartialEq>(
    mut a: &'s [T],
    mut b: &'s [T],
) -> (&'s [T], &'s [T]) {
    let prefix = a.iter().zip(b).take_while(|(x, y)| x == y).count();
    a = &a[prefix..];
    b = &b[prefix..];
    let suffix = a
        .iter()
        .rev()
        .zip(b.iter().rev())
        .take_while(|(x, y)| x == y)
        .count();
    (&a[..a.len() - suffix], &b[..b.len() - suffix])
}

/// The banded two-row DP shared by the scratch and allocating entry points.
/// `prev`/`curr` are resized (not reallocated once warm) to `min(n,m)+1`.
fn banded_dp<T: Copy + PartialEq>(
    a: &[T],
    b: &[T],
    max: usize,
    prev: &mut Vec<u32>,
    curr: &mut Vec<u32>,
) -> Option<usize> {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if long.len() - short.len() > max {
        return None;
    }
    if short.is_empty() {
        return (long.len() <= max).then_some(long.len());
    }
    if short.len() == 1 {
        // Closed form: align the lone element against `long` — one
        // substitution saved iff it occurs anywhere in `long`. After
        // affix trimming most real perturbation pairs land here.
        let hit = long.contains(&short[0]);
        let d = long.len() - usize::from(hit);
        return (d <= max).then_some(d);
    }

    const INF: u32 = u32::MAX / 2;
    let n = short.len();
    prev.clear();
    prev.resize(n + 1, INF);
    curr.clear();
    curr.resize(n + 1, INF);
    for (j, p) in prev.iter_mut().enumerate().take(max.min(n) + 1) {
        *p = j as u32;
    }

    for (i, &lc) in long.iter().enumerate() {
        let row = i + 1;
        let lo = row.saturating_sub(max);
        let hi = (row + max).min(n);
        if lo > hi {
            return None;
        }
        curr[lo.saturating_sub(1)] = INF;
        let mut row_min = INF;
        for j in lo..=hi {
            let val = if j == 0 {
                row as u32
            } else {
                let cost = u32::from(lc != short[j - 1]);
                let diag = prev[j - 1].saturating_add(cost);
                let up = prev[j].saturating_add(1);
                let left = curr[j - 1].saturating_add(1);
                diag.min(up).min(left)
            };
            curr[j] = val;
            row_min = row_min.min(val);
        }
        if row_min as usize > max {
            return None;
        }
        if lo > 0 {
            curr[lo - 1] = INF;
        }
        if hi < n {
            curr[hi + 1] = INF;
        }
        std::mem::swap(prev, curr);
    }
    let d = prev[n] as usize;
    (d <= max).then_some(d)
}

/// Classic Levenshtein distance over Unicode scalar values, using the
/// two-row dynamic program (`O(n·m)` time, `O(min(n, m))` space).
pub fn levenshtein(a: &str, b: &str) -> usize {
    // Fast paths.
    if a == b {
        return 0;
    }
    let a_chars: Vec<char> = a.chars().collect();
    let b_chars: Vec<char> = b.chars().collect();
    levenshtein_chars(&a_chars, &b_chars)
}

/// Levenshtein over pre-split char slices; exposed for callers that reuse
/// the decomposition (the Look Up hot path decomposes the query once).
pub fn levenshtein_chars(a: &[char], b: &[char]) -> usize {
    // Keep the shorter string in the inner dimension for less memory.
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut curr: Vec<usize> = vec![0; short.len() + 1];
    for (i, &lc) in long.iter().enumerate() {
        curr[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            curr[j + 1] = (prev[j] + cost) // substitute
                .min(prev[j + 1] + 1) // delete from long
                .min(curr[j] + 1); // insert into long
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[short.len()]
}

/// Bounded Levenshtein: returns `Some(d)` when `d = lev(a, b) <= max`, else
/// `None`.
///
/// Runs the DP restricted to a diagonal band of half-width `max`
/// (`O(max · min(n, m))`) and exits as soon as every cell in a row exceeds
/// the bound. This is the work-horse of SMS filtering: with the paper's
/// default `d = 3`, buckets of thousands of candidates are filtered with a
/// handful of band cells each.
pub fn levenshtein_bounded(a: &str, b: &str, max: usize) -> Option<usize> {
    if a == b {
        return Some(0);
    }
    let a_chars: Vec<char> = a.chars().collect();
    let b_chars: Vec<char> = b.chars().collect();
    levenshtein_bounded_chars(&a_chars, &b_chars, max)
}

/// Char-slice version of [`levenshtein_bounded`].
pub fn levenshtein_bounded_chars(a: &[char], b: &[char], max: usize) -> Option<usize> {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    // Length difference is a lower bound on the distance.
    if long.len() - short.len() > max {
        return None;
    }
    if short.is_empty() {
        return (long.len() <= max).then_some(long.len());
    }

    const INF: usize = usize::MAX / 2;
    let n = short.len();
    let mut prev: Vec<usize> = vec![INF; n + 1];
    let mut curr: Vec<usize> = vec![INF; n + 1];
    // Row 0: distance from empty prefix of `long`.
    for (j, p) in prev.iter_mut().enumerate().take(max.min(n) + 1) {
        *p = j;
    }

    for (i, &lc) in long.iter().enumerate() {
        // Band for row i+1: columns where |(i+1) - j| <= max.
        let row = i + 1;
        let lo = row.saturating_sub(max);
        let hi = (row + max).min(n);
        if lo > hi {
            return None;
        }
        curr[lo.saturating_sub(1)] = INF; // left neighbour of band start
        let mut row_min = INF;
        for j in lo..=hi {
            let val = if j == 0 {
                row
            } else {
                let cost = usize::from(lc != short[j - 1]);
                let diag = prev[j - 1].saturating_add(cost);
                let up = prev[j].saturating_add(1);
                let left = curr[j - 1].saturating_add(1);
                diag.min(up).min(left)
            };
            curr[j] = val;
            row_min = row_min.min(val);
        }
        if row_min > max {
            return None;
        }
        // Reset cells outside next band to INF lazily via swap pattern:
        // cells outside [lo, hi] in `curr` may hold stale values; clear the
        // immediate neighbours that the next row can read.
        if lo > 0 {
            curr[lo - 1] = INF;
        }
        if hi < n {
            curr[hi + 1] = INF;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    let d = prev[n];
    (d <= max).then_some(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_cases() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "abc"), 3);
    }

    #[test]
    fn paper_perturbation_distances() {
        // §III-B: repubLIEcans is distance 1 (case-insensitive) from republicans.
        assert_eq!(levenshtein("republicans", "republiecans"), 1);
        assert_eq!(levenshtein("republicans", "republic@@ns"), 2);
        assert_eq!(levenshtein("democrats", "demokrats"), 1);
        assert_eq!(
            levenshtein("democrats", "demorcats"),
            2,
            "swap = 2 plain edits"
        );
        assert_eq!(levenshtein("suicide", "suic1de"), 1);
    }

    #[test]
    fn unicode_counts_scalars_not_bytes() {
        // Cyrillic а for Latin a: one substitution, though 2 bytes differ.
        assert_eq!(levenshtein("paypal", "p\u{0430}ypal"), 1);
        assert_eq!(levenshtein("café", "cafe"), 1);
    }

    #[test]
    fn bounded_exact_values() {
        assert_eq!(levenshtein_bounded("kitten", "sitting", 3), Some(3));
        assert_eq!(levenshtein_bounded("kitten", "sitting", 2), None);
        assert_eq!(levenshtein_bounded("abc", "abc", 0), Some(0));
        assert_eq!(levenshtein_bounded("abc", "abd", 0), None);
    }

    #[test]
    fn bounded_length_gap_shortcut() {
        // Length difference alone exceeds the bound — must not run the DP.
        assert_eq!(levenshtein_bounded("a", "aaaaaaaaaa", 3), None);
        assert_eq!(levenshtein_bounded("", "abcd", 3), None);
        assert_eq!(levenshtein_bounded("", "abc", 3), Some(3));
    }

    #[test]
    fn bounded_zero_max() {
        assert_eq!(levenshtein_bounded("same", "same", 0), Some(0));
        assert_eq!(levenshtein_bounded("same", "sane", 0), None);
    }

    #[test]
    fn bounded_large_max_equals_full() {
        let pairs = [
            ("democrats", "republicans"),
            ("abcdef", "fedcba"),
            ("aaa", "bbbb"),
        ];
        for (a, b) in pairs {
            assert_eq!(levenshtein_bounded(a, b, 100), Some(levenshtein(a, b)));
        }
    }

    #[test]
    fn char_slice_api_matches_str_api() {
        let a: Vec<char> = "perturbation".chars().collect();
        let b: Vec<char> = "perturbaton".chars().collect();
        assert_eq!(
            levenshtein_chars(&a, &b),
            levenshtein("perturbation", "perturbaton")
        );
        assert_eq!(
            levenshtein_bounded_chars(&a, &b, 2),
            levenshtein_bounded("perturbation", "perturbaton", 2)
        );
    }

    #[test]
    fn scratch_variant_matches_allocating_variant() {
        let mut scratch = EditScratch::new();
        let pairs = [
            ("kitten", "sitting"),
            ("republicans", "republic@@ns"),
            ("café", "cafe"),
            ("p\u{0430}ypal", "paypal"),
            ("", "abc"),
            ("same", "same"),
            ("a", "aaaaaaaaaa"),
        ];
        for (a, b) in pairs {
            for max in 0..6 {
                assert_eq!(
                    levenshtein_bounded_scratch(a, b, max, &mut scratch),
                    levenshtein_bounded(a, b, max),
                    "{a:?} vs {b:?} at max {max}"
                );
            }
        }
    }

    #[test]
    fn scratch_reuse_across_mixed_ascii_unicode_calls() {
        // Interleave ASCII and non-ASCII comparisons through one scratch to
        // catch stale-buffer bugs.
        let mut scratch = EditScratch::new();
        assert_eq!(
            levenshtein_bounded_scratch("abcdef", "abXdef", 3, &mut scratch),
            Some(1)
        );
        assert_eq!(
            levenshtein_bounded_scratch("naïve", "naive", 3, &mut scratch),
            Some(1)
        );
        assert_eq!(
            levenshtein_bounded_scratch("abc", "abc", 3, &mut scratch),
            Some(0)
        );
        assert_eq!(
            levenshtein_bounded_scratch("żółć", "zolc", 4, &mut scratch),
            Some(4)
        );
        assert_eq!(
            levenshtein_bounded_scratch("longerword", "cut", 3, &mut scratch),
            None
        );
    }

    #[test]
    fn myers_matches_classic_dp_on_textbook_cases() {
        let mut scratch = EditScratch::new();
        let pairs = [
            ("kitten", "sitting"),
            ("flaw", "lawn"),
            ("republicans", "republic@@ns"),
            ("democrats", "demorcats"),
            ("ab", "abcdef"),
            ("abcdef", "ab"),
            ("xy", "xy"),
        ];
        for (a, b) in pairs {
            let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
            assert_eq!(
                myers_ascii(short.as_bytes(), long.as_bytes(), &mut scratch),
                levenshtein(a, b),
                "{a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn myers_full_word_pattern() {
        // 64-byte pattern exercises the m == 64 mask edge (1 << 64 would
        // overflow; the implementation must use u64::MAX).
        let mut scratch = EditScratch::new();
        let a = "a".repeat(64);
        let mut b = a.clone();
        b.replace_range(10..11, "b");
        b.push('c');
        assert_eq!(myers_ascii(a.as_bytes(), b.as_bytes(), &mut scratch), 2);
        assert_eq!(
            myers_ascii(a.as_bytes(), a.as_bytes(), &mut scratch),
            0,
            "identical full-word inputs"
        );
    }

    #[test]
    fn myers_scratch_reuse_clears_pattern_bitmaps() {
        // A second call whose pattern shares bytes with the first must not
        // see stale Eq bits.
        let mut scratch = EditScratch::new();
        assert_eq!(myers_ascii(b"abc", b"abd", &mut scratch), 1);
        assert_eq!(myers_ascii(b"cba", b"abc", &mut scratch), 2);
        assert_eq!(myers_ascii(b"zz", b"azza", &mut scratch), 2);
    }

    #[test]
    fn scratch_routes_long_ascii_through_banded_fallback() {
        // Shorter side > 64 bytes after trimming: Myers cannot apply, and
        // the banded fallback must agree with the allocating variant.
        let mut scratch = EditScratch::new();
        let a: String = (0..80).map(|i| char::from(b'a' + (i % 7) as u8)).collect();
        let b: String = (0..83).map(|i| char::from(b'a' + (i % 5) as u8)).collect();
        for max in [0, 3, 60, 100] {
            assert_eq!(
                levenshtein_bounded_scratch(&a, &b, max, &mut scratch),
                levenshtein_bounded(&a, &b, max),
                "max {max}"
            );
        }
    }

    #[test]
    fn asymmetric_lengths_both_orders() {
        assert_eq!(levenshtein("ab", "abcdef"), 4);
        assert_eq!(levenshtein("abcdef", "ab"), 4);
        assert_eq!(levenshtein_bounded("ab", "abcdef", 4), Some(4));
        assert_eq!(levenshtein_bounded("abcdef", "ab", 4), Some(4));
    }
}
