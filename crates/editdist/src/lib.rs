//! # cryptext-editdist
//!
//! Edit distances for the CrypText SMS property (§III-B of the paper).
//!
//! CrypText treats a small Levenshtein distance between two tokens that
//! share a phonetic encoding as a proxy for "same meaning". The Look Up and
//! Normalization paths call the *bounded* variant millions of times while
//! filtering `H_k` buckets, so this crate provides:
//!
//! * [`levenshtein`] — the classic two-row dynamic program.
//! * [`levenshtein_bounded`] — banded DP with early exit; `O(d·min(n,m))`
//!   instead of `O(n·m)`.
//! * [`levenshtein_bounded_scratch`] — the hot-path workhorse: driven
//!   through caller-provided [`EditScratch`] buffers with an ASCII
//!   byte-slice fast path, so per-candidate filtering allocates nothing.
//!   ASCII pairs whose shorter side fits in 64 bytes (after common-affix
//!   trimming) run [`myers_ascii`], Myers' bit-parallel algorithm; longer
//!   or non-ASCII inputs fall back to the banded DP.
//! * [`damerau_osa`] — optimal-string-alignment distance counting adjacent
//!   transposition as one edit (the TextBugger "swap" operation).
//! * [`similarity`] — normalized similarity in `[0, 1]`.
//!
//! All functions operate on Unicode scalar values, not bytes, so homoglyph
//! perturbations count as single edits.

#![warn(missing_docs)]

mod damerau;
mod levenshtein;

pub use damerau::damerau_osa;
pub use levenshtein::{
    levenshtein, levenshtein_bounded, levenshtein_bounded_chars, levenshtein_bounded_scratch,
    levenshtein_chars, myers_ascii, EditScratch,
};

/// Normalized similarity: `1 - lev(a, b) / max(|a|, |b|)`, and `1.0` when
/// both strings are empty. Always in `[0, 1]`.
pub fn similarity(a: &str, b: &str) -> f64 {
    let la = a.chars().count();
    let lb = b.chars().count();
    let denom = la.max(lb);
    if denom == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / denom as f64
}

/// Is `lev(a, b) <= d`? Uses the bounded algorithm, so this is cheap even
/// for long strings when `d` is small.
#[inline]
pub fn within(a: &str, b: &str, d: usize) -> bool {
    levenshtein_bounded(a, b, d).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn similarity_range_and_examples() {
        assert_eq!(similarity("", ""), 1.0);
        assert_eq!(similarity("abc", "abc"), 1.0);
        assert_eq!(similarity("abc", ""), 0.0);
        let s = similarity("democrats", "demokrats");
        assert!((s - 8.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn within_uses_bound() {
        assert!(within("republicans", "republiecans", 1));
        assert!(!within("republicans", "republic@@ns", 1));
        assert!(within("republicans", "republic@@ns", 2));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn small_string() -> impl Strategy<Value = String> {
        "[a-d]{0,12}"
    }

    proptest! {
        /// Identity of indiscernibles: d(a,b) == 0 iff a == b.
        #[test]
        fn identity(a in small_string(), b in small_string()) {
            let d = levenshtein(&a, &b);
            prop_assert_eq!(d == 0, a == b);
        }

        /// Symmetry.
        #[test]
        fn symmetry(a in small_string(), b in small_string()) {
            prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        }

        /// Triangle inequality over a sampled triple.
        #[test]
        fn triangle(a in small_string(), b in small_string(), c in small_string()) {
            let ab = levenshtein(&a, &b);
            let bc = levenshtein(&b, &c);
            let ac = levenshtein(&a, &c);
            prop_assert!(ac <= ab + bc, "d(a,c)={ac} > d(a,b)+d(b,c)={}", ab + bc);
        }

        /// Distance is bounded by the longer string's length and bounded
        /// below by the length difference.
        #[test]
        fn length_bounds(a in small_string(), b in small_string()) {
            let d = levenshtein(&a, &b);
            let (la, lb) = (a.chars().count(), b.chars().count());
            prop_assert!(d <= la.max(lb));
            prop_assert!(d >= la.abs_diff(lb));
        }

        /// The bounded variant agrees exactly with the full DP whenever the
        /// true distance fits the bound, and returns None otherwise.
        #[test]
        fn bounded_agrees_with_full(a in small_string(), b in small_string(), max in 0usize..8) {
            let full = levenshtein(&a, &b);
            match levenshtein_bounded(&a, &b, max) {
                Some(d) => {
                    prop_assert_eq!(d, full);
                    prop_assert!(d <= max);
                }
                None => prop_assert!(full > max),
            }
        }

        /// OSA never exceeds Levenshtein (a transposition is cheaper than
        /// two plain edits).
        #[test]
        fn osa_leq_levenshtein(a in small_string(), b in small_string()) {
            prop_assert!(damerau_osa(&a, &b) <= levenshtein(&a, &b));
        }

        /// Appending the same suffix never increases the distance.
        #[test]
        fn common_suffix_stable(a in small_string(), b in small_string(), s in "[a-d]{0,4}") {
            let d0 = levenshtein(&a, &b);
            let d1 = levenshtein(&format!("{a}{s}"), &format!("{b}{s}"));
            prop_assert!(d1 <= d0);
        }

        /// Similarity is always within [0, 1].
        #[test]
        fn similarity_unit_interval(a in small_string(), b in small_string()) {
            let s = similarity(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
        }

        /// The scratch-buffer variant is bit-identical to the allocating
        /// bounded variant, including across mixed ASCII/Unicode inputs
        /// reusing one scratch.
        #[test]
        fn scratch_agrees_with_bounded(
            a in "\\PC{0,12}",
            b in "\\PC{0,12}",
            max in 0usize..8,
        ) {
            let mut scratch = EditScratch::new();
            prop_assert_eq!(
                levenshtein_bounded_scratch(&a, &b, max, &mut scratch),
                levenshtein_bounded(&a, &b, max),
                "{:?} vs {:?} at {}", a, b, max
            );
            // Second call through the same scratch must be unaffected by
            // leftover state.
            prop_assert_eq!(
                levenshtein_bounded_scratch(&b, &a, max, &mut scratch),
                levenshtein_bounded(&b, &a, max)
            );
        }

        /// Myers' bit-parallel distance agrees exactly with the banded DP
        /// reference (via the full two-row DP) on word-sized ASCII inputs,
        /// reusing one scratch across calls.
        #[test]
        fn myers_agrees_with_dp(
            a in "[ -~]{1,64}",
            b in "[ -~]{0,80}",
        ) {
            let mut scratch = EditScratch::new();
            let (short, long) = if a.len() <= b.len() {
                (a.as_bytes(), b.as_bytes())
            } else {
                (b.as_bytes(), a.as_bytes())
            };
            if !short.is_empty() {
                let myers = myers_ascii(short, long, &mut scratch);
                prop_assert_eq!(myers, levenshtein(&a, &b), "{:?} vs {:?}", a, b);
            }
        }

        /// The scratch entry point stays bit-identical to the allocating
        /// reference across the Myers routing boundary: short ASCII (Myers),
        /// >64-char ASCII (banded fallback), and Unicode (char-decode path),
        /// interleaved through one scratch.
        #[test]
        fn routing_boundary_agrees_with_bounded(
            short_a in "[a-f!@ ]{0,20}",
            short_b in "[a-f!@ ]{0,20}",
            long_a in "[a-c]{60,90}",
            long_b in "[a-c]{60,90}",
            uni_a in "\\PC{0,10}",
            uni_b in "\\PC{0,10}",
            max in 0usize..40,
        ) {
            let mut scratch = EditScratch::new();
            for (a, b) in [
                (&short_a, &short_b),
                (&long_a, &long_b),
                (&uni_a, &uni_b),
                (&short_a, &long_b),
                (&uni_a, &short_b),
            ] {
                prop_assert_eq!(
                    levenshtein_bounded_scratch(a, b, max, &mut scratch),
                    levenshtein_bounded(a, b, max),
                    "{:?} vs {:?} at {}", a, b, max
                );
            }
        }
    }
}
