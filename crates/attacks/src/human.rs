//! The human-written perturbation generator.
//!
//! Reproduces the wild strategies catalogued in §II-C of the paper. Each
//! [`Strategy`] is an independent, deterministic transformation; the
//! [`HumanPerturber`] samples among the applicable ones by weight.
//!
//! Most strategies are *sound-preserving*: the perturbed token keeps the
//! same customized-Soundex code (at `k ≤ 1`) as the original, which is why
//! the paper's `H_k` database groups them with their base word. The
//! [`Strategy::Censor`] strategy is the deliberate exception (a `*` has no
//! letter interpretation), mirroring censored slurs in the wild that
//! require edit-distance — not sound — to resolve.

use cryptext_common::SplitMix64;
use cryptext_confusables::{visual_variants, VariantClass};
use cryptext_phonetics::soundex_digit;

use crate::TokenPerturber;

/// One human perturbation strategy from §II-C.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Inner-case emphasis: `democrats → democRATs`.
    Emphasis,
    /// Hyphenation: `muslim → mus-lim`.
    Hyphenation,
    /// Character repetition: `porn → porrrrn`.
    Repetition,
    /// Visual/leet substitution: `suicide → suic1de`, `class → cla$$`.
    Leet,
    /// Phonetically-similar consonant substitution (same Soundex group):
    /// `depression → depresxion`.
    PhoneticSub,
    /// Censoring an interior character with `*`: `slur → s*ur`.
    Censor,
}

impl Strategy {
    /// All strategies in canonical order.
    pub const ALL: [Strategy; 6] = [
        Strategy::Emphasis,
        Strategy::Hyphenation,
        Strategy::Repetition,
        Strategy::Leet,
        Strategy::PhoneticSub,
        Strategy::Censor,
    ];

    /// Short name for experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Emphasis => "emphasis",
            Strategy::Hyphenation => "hyphenation",
            Strategy::Repetition => "repetition",
            Strategy::Leet => "leet",
            Strategy::PhoneticSub => "phonetic",
            Strategy::Censor => "censor",
        }
    }

    /// Does this strategy keep the customized Soundex code intact at k ≤ 1?
    pub fn sound_preserving(&self) -> bool {
        !matches!(self, Strategy::Censor)
    }

    /// Apply to `token`; `None` when inapplicable.
    pub fn apply(&self, token: &str, rng: &mut SplitMix64) -> Option<String> {
        let chars: Vec<char> = token.chars().collect();
        let n = chars.len();
        match self {
            Strategy::Emphasis => {
                // Uppercase an interior run of 2–4 letters; needs a mostly
                // lowercase alphabetic token of length ≥ 5.
                if n < 5 || !chars.iter().all(|c| c.is_ascii_alphabetic()) {
                    return None;
                }
                if chars.iter().filter(|c| c.is_ascii_uppercase()).count() > 0 {
                    return None; // already case-marked
                }
                let run = 2 + rng.index(3.min(n - 2));
                let start = 1 + rng.index(n - run); // never position 0
                let mut out = chars.clone();
                for c in &mut out[start..start + run] {
                    *c = c.to_ascii_uppercase();
                }
                Some(out.into_iter().collect())
            }
            Strategy::Hyphenation => {
                // Insert '-' strictly inside, at least 2 chars from either
                // end, so the Soundex prefix (k+1 ≤ 2 chars) is unchanged.
                if n < 5 || !chars.iter().all(|c| c.is_ascii_alphabetic()) {
                    return None;
                }
                let pos = 2 + rng.index(n - 3);
                let mut out = chars.clone();
                out.insert(pos, '-');
                Some(out.into_iter().collect())
            }
            Strategy::Repetition => {
                // Repeat one character 2–3 extra times, at index ≥ 2 so the
                // literal prefix survives. Capped at 3 so repetitions stay
                // within the paper's default edit-distance bound d = 3
                // (its own example, porn → porrrrn, is exactly +3).
                if n < 3 {
                    return None;
                }
                let candidates: Vec<usize> =
                    (2..n).filter(|&i| chars[i].is_ascii_alphabetic()).collect();
                let &pos = rng.choose(&candidates)?;
                let extra = 2 + rng.index(2);
                let mut out = chars.clone();
                for _ in 0..extra {
                    out.insert(pos, chars[pos]);
                }
                Some(out.into_iter().collect())
            }
            Strategy::Leet => {
                // Replace 1–2 letters with visual stand-ins; fold-invariant
                // at any position.
                if n < 3 {
                    return None;
                }
                let candidates: Vec<usize> = (0..n)
                    .filter(|&i| !visual_variants(chars[i]).is_empty())
                    .collect();
                if candidates.is_empty() {
                    return None;
                }
                let count = 1 + usize::from(rng.chance(0.35) && candidates.len() > 1);
                let picks = rng.sample_indices(candidates.len(), count);
                let mut out = chars.clone();
                for p in picks {
                    let pos = candidates[p];
                    let variants = visual_variants(chars[pos]);
                    // Prefer ASCII leet over exotic homoglyphs 3:1 — that is
                    // what the wild data shows.
                    let leet: Vec<char> = variants
                        .iter()
                        .copied()
                        .filter(|&v| {
                            cryptext_confusables::tables::classify_variant(v)
                                == Some(VariantClass::Leet)
                        })
                        .collect();
                    let pool: &[char] = if !leet.is_empty() && rng.chance(0.75) {
                        &leet
                    } else {
                        variants
                    };
                    out[pos] = *rng.choose(pool).expect("non-empty pool");
                }
                let result: String = out.into_iter().collect();
                (result != token).then_some(result)
            }
            Strategy::PhoneticSub => {
                // Swap a consonant (index ≥ 2) for another letter in the
                // same Soundex digit group: depression → depresxion.
                if n < 4 {
                    return None;
                }
                // Only positions whose Soundex group has at least one other
                // member ('l' and 'r' sit alone in groups 4 and 6).
                let candidates: Vec<usize> = (2..n)
                    .filter(|&i| {
                        chars[i].is_ascii_lowercase()
                            && soundex_digit(chars[i]).is_some_and(|d| {
                                ('a'..='z').any(|c| c != chars[i] && soundex_digit(c) == Some(d))
                            })
                    })
                    .collect();
                let &pos = rng.choose(&candidates)?;
                let digit = soundex_digit(chars[pos]).expect("filtered");
                let group: Vec<char> = ('a'..='z')
                    .filter(|&c| c != chars[pos] && soundex_digit(c) == Some(digit))
                    .collect();
                let replacement = *rng.choose(&group).expect("non-singleton group");
                let mut out = chars.clone();
                out[pos] = replacement;
                Some(out.into_iter().collect())
            }
            Strategy::Censor => {
                // Star out one interior character.
                if n < 4 {
                    return None;
                }
                let pos = 1 + rng.index(n - 2);
                if !chars[pos].is_ascii_alphabetic() {
                    return None;
                }
                let mut out = chars.clone();
                out[pos] = '*';
                Some(out.into_iter().collect())
            }
        }
    }
}

/// Samples among human strategies by weight.
#[derive(Debug, Clone)]
pub struct HumanPerturber {
    strategies: Vec<(Strategy, f64)>,
}

impl HumanPerturber {
    /// The default mixture, weighted toward the strategies the paper
    /// reports as most common (leet/visual first, emphasis second).
    pub fn new() -> Self {
        HumanPerturber {
            strategies: vec![
                (Strategy::Leet, 0.35),
                (Strategy::Emphasis, 0.20),
                (Strategy::Repetition, 0.15),
                (Strategy::Hyphenation, 0.12),
                (Strategy::PhoneticSub, 0.12),
                (Strategy::Censor, 0.06),
            ],
        }
    }

    /// Restrict to sound-preserving strategies (everything but Censor) —
    /// guarantees the perturbation stays in the same `H_k` bucket (k ≤ 1).
    pub fn sound_preserving() -> Self {
        let mut p = Self::new();
        p.strategies.retain(|(s, _)| s.sound_preserving());
        p
    }

    /// A single-strategy perturber (for ablations).
    pub fn only(strategy: Strategy) -> Self {
        HumanPerturber {
            strategies: vec![(strategy, 1.0)],
        }
    }

    /// Custom mixture; weights need not sum to 1.
    pub fn with_weights(strategies: Vec<(Strategy, f64)>) -> Self {
        assert!(!strategies.is_empty(), "at least one strategy");
        HumanPerturber { strategies }
    }

    /// The strategies and weights in play.
    pub fn strategies(&self) -> &[(Strategy, f64)] {
        &self.strategies
    }
}

impl Default for HumanPerturber {
    fn default() -> Self {
        Self::new()
    }
}

impl TokenPerturber for HumanPerturber {
    fn name(&self) -> &'static str {
        "human"
    }

    fn perturb_token(&self, token: &str, rng: &mut SplitMix64) -> Option<String> {
        let weights: Vec<f64> = self.strategies.iter().map(|(_, w)| *w).collect();
        // Up to 8 attempts: strategies may decline a given token.
        for _ in 0..8 {
            let idx = rng.weighted_index(&weights)?;
            let (strategy, _) = self.strategies[idx];
            if let Some(out) = strategy.apply(token, rng) {
                if out != token {
                    return Some(out);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cryptext_phonetics::CustomSoundex;

    #[test]
    fn emphasis_shape() {
        let mut rng = SplitMix64::new(1);
        for _ in 0..100 {
            let out = Strategy::Emphasis.apply("democrats", &mut rng).unwrap();
            assert_eq!(out.to_ascii_lowercase(), "democrats");
            assert!(cryptext_common::text::has_inner_emphasis(&out), "{out}");
            assert!(out.starts_with('d'), "first char never uppercased: {out}");
        }
    }

    #[test]
    fn emphasis_declines_short_and_cased() {
        let mut rng = SplitMix64::new(2);
        assert_eq!(Strategy::Emphasis.apply("the", &mut rng), None);
        assert_eq!(Strategy::Emphasis.apply("DemocRATs", &mut rng), None);
        assert_eq!(Strategy::Emphasis.apply("dem0crats", &mut rng), None);
    }

    #[test]
    fn hyphenation_shape() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..100 {
            let out = Strategy::Hyphenation.apply("muslim", &mut rng).unwrap();
            assert_eq!(out.replace('-', ""), "muslim");
            let dash = out.find('-').unwrap();
            assert!(dash >= 2 && dash <= out.len() - 3, "{out}");
        }
    }

    #[test]
    fn repetition_shape() {
        let mut rng = SplitMix64::new(4);
        for _ in 0..100 {
            let out = Strategy::Repetition.apply("porn", &mut rng).unwrap();
            assert!(out.len() > 4, "{out}");
            assert_eq!(
                cryptext_common::text::squeeze_repeats(&out, 1),
                cryptext_common::text::squeeze_repeats("porn", 1),
                "{out}"
            );
        }
    }

    #[test]
    fn leet_folds_back() {
        let mut rng = SplitMix64::new(5);
        for _ in 0..100 {
            let out = Strategy::Leet.apply("suicide", &mut rng).unwrap();
            assert_ne!(out, "suicide");
            assert!(
                cryptext_confusables::are_confusable(&out, "suicide"),
                "{out} confusable with suicide"
            );
        }
    }

    #[test]
    fn phonetic_sub_keeps_soundex_group() {
        let mut rng = SplitMix64::new(6);
        let sx = CustomSoundex::new(1);
        let base = sx.encode("depression").unwrap();
        for _ in 0..100 {
            let out = Strategy::PhoneticSub.apply("depression", &mut rng).unwrap();
            assert_ne!(out, "depression");
            assert_eq!(sx.encode(&out).unwrap(), base, "{out} keeps code");
        }
    }

    #[test]
    fn censor_stars_an_interior_char() {
        let mut rng = SplitMix64::new(7);
        let out = Strategy::Censor.apply("slurs", &mut rng).unwrap();
        assert_eq!(out.chars().filter(|&c| c == '*').count(), 1);
        assert!(out.starts_with('s'), "{out}");
        assert!(!Strategy::Censor.sound_preserving());
    }

    #[test]
    fn sound_preserving_strategies_keep_codes() {
        // The defining property: every non-Censor strategy keeps the
        // k=1 customized Soundex bucket (possibly via an alternate
        // ambiguous-leet reading).
        let sx = CustomSoundex::new(1);
        let mut rng = SplitMix64::new(8);
        for word in [
            "democrats",
            "republicans",
            "vaccine",
            "depression",
            "muslim",
        ] {
            let base = sx.encode(word).unwrap();
            for strategy in Strategy::ALL.iter().filter(|s| s.sound_preserving()) {
                for _ in 0..50 {
                    if let Some(out) = strategy.apply(word, &mut rng) {
                        let all = sx.encode_all(&out);
                        assert!(
                            all.contains(&base),
                            "{} perturbation {out} of {word}: codes {all:?} lack {base}",
                            strategy.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn perturber_mixture_changes_tokens() {
        use crate::TokenPerturber;
        let hp = HumanPerturber::new();
        let mut rng = SplitMix64::new(9);
        let mut changed = 0;
        for _ in 0..200 {
            if let Some(out) = hp.perturb_token("republicans", &mut rng) {
                assert_ne!(out, "republicans");
                changed += 1;
            }
        }
        assert!(changed > 190, "almost always applicable: {changed}");
    }

    #[test]
    fn perturber_exercises_multiple_strategies() {
        use crate::TokenPerturber;
        let hp = HumanPerturber::new();
        let mut rng = SplitMix64::new(10);
        let mut kinds = std::collections::HashSet::new();
        for _ in 0..400 {
            if let Some(out) = hp.perturb_token("depression", &mut rng) {
                let kind = if out.contains('-') {
                    "hyphen"
                } else if out.contains('*') {
                    "censor"
                } else if out.chars().any(|c| c.is_ascii_uppercase()) {
                    "emphasis"
                } else if out.len() > "depression".len() {
                    "repetition"
                } else if out
                    .chars()
                    .any(|c| !c.is_ascii_alphanumeric() || c.is_ascii_digit())
                {
                    "leet"
                } else {
                    "phonetic"
                };
                kinds.insert(kind);
            }
        }
        assert!(kinds.len() >= 5, "diverse strategies: {kinds:?}");
    }

    #[test]
    fn only_constructor_restricts() {
        use crate::TokenPerturber;
        let hp = HumanPerturber::only(Strategy::Hyphenation);
        let mut rng = SplitMix64::new(11);
        for _ in 0..50 {
            if let Some(out) = hp.perturb_token("vaccine", &mut rng) {
                assert!(out.contains('-'), "{out}");
            }
        }
    }

    #[test]
    fn sound_preserving_constructor_drops_censor() {
        let hp = HumanPerturber::sound_preserving();
        assert!(hp.strategies().iter().all(|(s, _)| s.sound_preserving()));
        assert_eq!(hp.strategies().len(), 5);
    }

    #[test]
    fn tiny_tokens_handled_gracefully() {
        use crate::TokenPerturber;
        let hp = HumanPerturber::new();
        let mut rng = SplitMix64::new(12);
        // Should never panic; may or may not perturb.
        for t in ["ab", "a", "", "xy"] {
            let _ = hp.perturb_token(t, &mut rng);
        }
    }
}
