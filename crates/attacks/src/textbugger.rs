//! TextBugger-style character operations (Li et al., NDSS'19).
//!
//! The five black-box bug types from the paper CrypText cites:
//! character **insert**, **delete**, adjacent **swap**, **sub-C** with a
//! keyboard-adjacent character (typo model), and **sub-W**-style visual
//! substitution. The op is chosen uniformly per token.

use cryptext_common::SplitMix64;

use crate::TokenPerturber;

/// Keyboard-adjacent lowercase letters on QWERTY (used by the typo
/// substitution op).
pub fn keyboard_neighbors(c: char) -> &'static [char] {
    match c.to_ascii_lowercase() {
        'q' => &['w', 'a'],
        'w' => &['q', 'e', 's'],
        'e' => &['w', 'r', 'd'],
        'r' => &['e', 't', 'f'],
        't' => &['r', 'y', 'g'],
        'y' => &['t', 'u', 'h'],
        'u' => &['y', 'i', 'j'],
        'i' => &['u', 'o', 'k'],
        'o' => &['i', 'p', 'l'],
        'p' => &['o', 'l'],
        'a' => &['q', 's', 'z'],
        's' => &['a', 'd', 'w', 'x'],
        'd' => &['s', 'f', 'e', 'c'],
        'f' => &['d', 'g', 'r', 'v'],
        'g' => &['f', 'h', 't', 'b'],
        'h' => &['g', 'j', 'y', 'n'],
        'j' => &['h', 'k', 'u', 'm'],
        'k' => &['j', 'l', 'i'],
        'l' => &['k', 'o', 'p'],
        'z' => &['a', 'x'],
        'x' => &['z', 'c', 's'],
        'c' => &['x', 'v', 'd'],
        'v' => &['c', 'b', 'f'],
        'b' => &['v', 'n', 'g'],
        'n' => &['b', 'm', 'h'],
        'm' => &['n', 'j'],
        _ => &[],
    }
}

/// The TextBugger perturber.
#[derive(Debug, Default, Clone, Copy)]
pub struct TextBugger;

impl TextBugger {
    const OPS: usize = 5;

    fn apply_op(op: usize, chars: &[char], rng: &mut SplitMix64) -> Option<String> {
        let n = chars.len();
        match op {
            // Insert a space-free character inside the word.
            0 => {
                let pos = 1 + rng.index(n - 1);
                let c = (b'a' + rng.index(26) as u8) as char;
                let mut out: Vec<char> = chars.to_vec();
                out.insert(pos, c);
                Some(out.into_iter().collect())
            }
            // Delete an interior character.
            1 => {
                if n < 4 {
                    return None;
                }
                let pos = 1 + rng.index(n - 2);
                let mut out: Vec<char> = chars.to_vec();
                out.remove(pos);
                Some(out.into_iter().collect())
            }
            // Swap two adjacent interior characters (democrats→demorcats).
            2 => {
                if n < 4 {
                    return None;
                }
                let pos = 1 + rng.index(n - 3);
                let mut out: Vec<char> = chars.to_vec();
                out.swap(pos, pos + 1);
                (out != chars).then(|| out.into_iter().collect())
            }
            // Substitute with a keyboard neighbour (rwpublicans).
            3 => {
                let candidates: Vec<usize> = (0..n)
                    .filter(|&i| !keyboard_neighbors(chars[i]).is_empty())
                    .collect();
                let &pos = rng.choose(&candidates)?;
                let neighbors = keyboard_neighbors(chars[pos]);
                let mut out: Vec<char> = chars.to_vec();
                let replacement = *rng.choose(neighbors).expect("non-empty");
                out[pos] = if chars[pos].is_ascii_uppercase() {
                    replacement.to_ascii_uppercase()
                } else {
                    replacement
                };
                Some(out.into_iter().collect())
            }
            // Substitute with a visually similar character (dem0cr@ts).
            4 => {
                let candidates: Vec<usize> = (0..n)
                    .filter(|&i| !cryptext_confusables::visual_variants(chars[i]).is_empty())
                    .collect();
                let &pos = rng.choose(&candidates)?;
                let variants = cryptext_confusables::visual_variants(chars[pos]);
                let mut out: Vec<char> = chars.to_vec();
                out[pos] = *rng.choose(variants).expect("non-empty");
                Some(out.into_iter().collect())
            }
            _ => unreachable!("op < OPS"),
        }
    }
}

impl TokenPerturber for TextBugger {
    fn name(&self) -> &'static str {
        "textbugger"
    }

    fn perturb_token(&self, token: &str, rng: &mut SplitMix64) -> Option<String> {
        let chars: Vec<char> = token.chars().collect();
        if chars.len() < 3 {
            return None;
        }
        // Try a few random ops; some ops decline some tokens.
        for _ in 0..6 {
            let op = rng.index(Self::OPS);
            if let Some(out) = Self::apply_op(op, &chars, rng) {
                if out != token {
                    return Some(out);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighbors_are_symmetric_enough() {
        // Spot-check bidirectionality of the neighbor graph.
        for (a, b) in [('q', 'w'), ('s', 'd'), ('n', 'm')] {
            assert!(keyboard_neighbors(a).contains(&b));
            assert!(keyboard_neighbors(b).contains(&a));
        }
        assert!(keyboard_neighbors('1').is_empty());
    }

    #[test]
    fn always_changes_the_token() {
        let tb = TextBugger;
        let mut rng = SplitMix64::new(11);
        for _ in 0..500 {
            let out = tb.perturb_token("democrats", &mut rng);
            let out = out.expect("democrats is perturbable");
            assert_ne!(out, "democrats");
        }
    }

    #[test]
    fn short_tokens_declined() {
        let tb = TextBugger;
        let mut rng = SplitMix64::new(1);
        assert_eq!(tb.perturb_token("ab", &mut rng), None);
        assert_eq!(tb.perturb_token("", &mut rng), None);
    }

    #[test]
    fn produces_all_five_op_shapes() {
        let tb = TextBugger;
        let mut rng = SplitMix64::new(7);
        let mut saw_insert = false;
        let mut saw_delete = false;
        let mut saw_other = false;
        for _ in 0..800 {
            let out = tb.perturb_token("republicans", &mut rng).unwrap();
            match out.chars().count().cmp(&"republicans".len()) {
                std::cmp::Ordering::Greater => saw_insert = true,
                std::cmp::Ordering::Less => saw_delete = true,
                std::cmp::Ordering::Equal => saw_other = true,
            }
        }
        assert!(saw_insert && saw_delete && saw_other);
    }

    #[test]
    fn edit_distance_is_small() {
        let tb = TextBugger;
        let mut rng = SplitMix64::new(3);
        for _ in 0..200 {
            let out = tb.perturb_token("vaccine", &mut rng).unwrap();
            // Every TextBugger op is within Damerau distance 1.
            let chars_a: Vec<char> = "vaccine".chars().collect();
            let chars_b: Vec<char> = out.chars().collect();
            let len_diff = chars_a.len().abs_diff(chars_b.len());
            assert!(len_diff <= 1, "{out}");
        }
    }

    #[test]
    fn deterministic_stream() {
        let tb = TextBugger;
        let a: Vec<Option<String>> = {
            let mut rng = SplitMix64::new(42);
            (0..20)
                .map(|_| tb.perturb_token("senator", &mut rng))
                .collect()
        };
        let b: Vec<Option<String>> = {
            let mut rng = SplitMix64::new(42);
            (0..20)
                .map(|_| tb.perturb_token("senator", &mut rng))
                .collect()
        };
        assert_eq!(a, b);
    }
}
