//! DeepWordBug-style homoglyph substitution (Gao et al., SPW'18:
//! "Black-box generation of adversarial text sequences").
//!
//! DeepWordBug scores tokens with a surrogate and then applies cheap
//! character transformations; the variant the CrypText paper highlights is
//! the **homoglyph swap** — replacing letters with same-shape characters
//! from other scripts so the token looks identical but tokenizes
//! differently. Without a surrogate model (black-box scoring is out of
//! scope here), we apply the swap to the highest-information characters:
//! the rarer consonants first, which empirically matches where the
//! original attack lands its edits.

use cryptext_common::SplitMix64;
use cryptext_confusables::{variants_of_class, VariantClass};

use crate::TokenPerturber;

/// Approximate English letter frequency rank (most frequent first); used
/// to prefer editing informative (rare) characters.
const FREQ_ORDER: &str = "etaoinshrdlcumwfgypbvkjxqz";

fn rarity(c: char) -> usize {
    FREQ_ORDER
        .find(c.to_ascii_lowercase())
        .unwrap_or(FREQ_ORDER.len())
}

/// The DeepWordBug perturber: swaps up to `max_swaps` characters for
/// foreign-script homoglyphs, preferring rare letters.
#[derive(Debug, Clone, Copy)]
pub struct DeepWordBug {
    /// Maximum homoglyph swaps per token.
    pub max_swaps: usize,
}

impl Default for DeepWordBug {
    fn default() -> Self {
        DeepWordBug { max_swaps: 2 }
    }
}

impl TokenPerturber for DeepWordBug {
    fn name(&self) -> &'static str {
        "deepwordbug"
    }

    fn perturb_token(&self, token: &str, rng: &mut SplitMix64) -> Option<String> {
        let chars: Vec<char> = token.chars().collect();
        if chars.len() < 3 {
            return None;
        }
        // Candidate positions that have a homoglyph, ordered rare-first.
        let mut candidates: Vec<usize> = (0..chars.len())
            .filter(|&i| !variants_of_class(chars[i], VariantClass::Homoglyph).is_empty())
            .collect();
        if candidates.is_empty() {
            return None;
        }
        candidates.sort_by_key(|&i| std::cmp::Reverse(rarity(chars[i])));
        let swaps = self.max_swaps.min(candidates.len()).max(1);

        let mut out = chars.clone();
        for &pos in candidates.iter().take(swaps) {
            let glyphs = variants_of_class(chars[pos], VariantClass::Homoglyph);
            if let Some(&g) = rng.choose(&glyphs) {
                out[pos] = g;
            }
        }
        let result: String = out.into_iter().collect();
        (result != token).then_some(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cryptext_confusables::skeleton;

    #[test]
    fn swaps_preserve_visual_skeleton() {
        let dwb = DeepWordBug::default();
        let mut rng = SplitMix64::new(1);
        for word in ["democrats", "vaccine", "suicide", "muslim"] {
            let out = dwb.perturb_token(word, &mut rng).unwrap();
            assert_ne!(out, word);
            assert_eq!(skeleton(&out), word, "homoglyphs fold back for {out}");
        }
    }

    #[test]
    fn respects_max_swaps() {
        let dwb = DeepWordBug { max_swaps: 1 };
        let mut rng = SplitMix64::new(2);
        let out = dwb.perturb_token("republicans", &mut rng).unwrap();
        let diff = out
            .chars()
            .zip("republicans".chars())
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(diff, 1);
    }

    #[test]
    fn prefers_rare_letters() {
        // In "extra", 'x' is the rarest letter with a homoglyph; with one
        // swap it must be chosen.
        let dwb = DeepWordBug { max_swaps: 1 };
        let mut rng = SplitMix64::new(3);
        let out = dwb.perturb_token("extra", &mut rng).unwrap();
        assert!(out.starts_with('e') && out.ends_with("ra"), "{out}");
        assert_ne!(out.chars().nth(1).unwrap(), 'x');
    }

    #[test]
    fn short_tokens_declined() {
        let dwb = DeepWordBug::default();
        let mut rng = SplitMix64::new(4);
        assert_eq!(dwb.perturb_token("ab", &mut rng), None);
    }

    #[test]
    fn length_always_preserved() {
        let dwb = DeepWordBug::default();
        let mut rng = SplitMix64::new(5);
        for _ in 0..100 {
            let out = dwb.perturb_token("moderation", &mut rng).unwrap();
            assert_eq!(out.chars().count(), "moderation".len());
        }
    }
}
