//! VIPER-style visual perturbation with accented characters
//! (Eger et al., NAACL'19: "Text processing like humans do: visually
//! attacking and shielding NLP systems").
//!
//! VIPER replaces each character with a visually similar one drawn from a
//! character-embedding space with probability `p`. Our reproduction draws
//! from the *accent* class of the confusables tables (`démocrats`,
//! `vãccine`), the dominant substitution family in the original paper.

use cryptext_common::SplitMix64;
use cryptext_confusables::{variants_of_class, VariantClass};

use crate::TokenPerturber;

/// The VIPER perturber: each alphabetic character is independently
/// replaced with an accented variant with probability `p`.
#[derive(Debug, Clone, Copy)]
pub struct Viper {
    /// Per-character replacement probability in `[0, 1]`.
    pub p: f64,
}

impl Viper {
    /// VIPER with the given per-character probability.
    pub fn new(p: f64) -> Self {
        Viper {
            p: p.clamp(0.0, 1.0),
        }
    }
}

impl Default for Viper {
    /// The moderate `p = 0.4` setting used in the paper's comparisons.
    fn default() -> Self {
        Viper::new(0.4)
    }
}

impl TokenPerturber for Viper {
    fn name(&self) -> &'static str {
        "viper"
    }

    fn perturb_token(&self, token: &str, rng: &mut SplitMix64) -> Option<String> {
        let mut out = String::with_capacity(token.len() * 2);
        let mut changed = false;
        for c in token.chars() {
            let mut replaced = false;
            if c.is_ascii_alphabetic() && rng.chance(self.p) {
                let accents = variants_of_class(c, VariantClass::Accent);
                if let Some(&a) = rng.choose(&accents) {
                    out.push(a);
                    replaced = true;
                    changed = true;
                }
            }
            if !replaced {
                out.push(c);
            }
        }
        // Guarantee at least one substitution for p > 0 on alphabetic
        // tokens: force the first substitutable character if none fired.
        if !changed && self.p > 0.0 {
            let chars: Vec<char> = token.chars().collect();
            for (i, &c) in chars.iter().enumerate() {
                let accents = variants_of_class(c, VariantClass::Accent);
                if let Some(&a) = rng.choose(&accents) {
                    let mut forced: Vec<char> = chars.clone();
                    forced[i] = a;
                    return Some(forced.into_iter().collect());
                }
            }
            return None;
        }
        changed.then_some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cryptext_confusables::skeleton;

    #[test]
    fn p_zero_never_perturbs() {
        let v = Viper::new(0.0);
        let mut rng = SplitMix64::new(1);
        assert_eq!(v.perturb_token("democrats", &mut rng), None);
    }

    #[test]
    fn p_one_perturbs_every_accentable_char() {
        let v = Viper::new(1.0);
        let mut rng = SplitMix64::new(2);
        let out = v.perturb_token("democrats", &mut rng).unwrap();
        assert_ne!(out, "democrats");
        // Every letter that has an accent variant gets one; only 'm' (no
        // accent in the table) may remain ASCII.
        let ascii_left: Vec<char> = out.chars().filter(|c| c.is_ascii_alphabetic()).collect();
        assert_eq!(ascii_left, vec!['m'], "{out}");
    }

    #[test]
    fn skeleton_folds_viper_output_back() {
        // The defense CrypText provides: the confusables skeleton undoes
        // VIPER's accent attack completely.
        let v = Viper::default();
        let mut rng = SplitMix64::new(3);
        for _ in 0..100 {
            if let Some(out) = v.perturb_token("vaccine", &mut rng) {
                assert_eq!(skeleton(&out), "vaccine", "{out}");
            }
        }
    }

    #[test]
    fn low_p_still_guarantees_a_change_when_possible() {
        let v = Viper::new(0.001);
        let mut rng = SplitMix64::new(4);
        let out = v.perturb_token("senate", &mut rng);
        assert!(out.is_some(), "forced substitution path");
        assert_ne!(out.unwrap(), "senate");
    }

    #[test]
    fn non_alphabetic_tokens_declined() {
        let v = Viper::default();
        let mut rng = SplitMix64::new(5);
        assert_eq!(v.perturb_token("1234", &mut rng), None);
        assert_eq!(v.perturb_token("", &mut rng), None);
    }

    #[test]
    fn probability_clamped() {
        assert_eq!(Viper::new(7.0).p, 1.0);
        assert_eq!(Viper::new(-1.0).p, 0.0);
    }
}
