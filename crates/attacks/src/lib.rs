//! # cryptext-attacks
//!
//! Character-level perturbation generators.
//!
//! Two families, mirroring the paper's dichotomy (§II-B vs §II-C):
//!
//! * **Machine-generated baselines** — re-implementations of the attack
//!   operations from the adversarial-NLP literature the paper cites:
//!   [`TextBugger`] (insert/delete/swap/keyboard-sub/visual-sub, Li et al.
//!   NDSS'19), [`Viper`] (accent/diacritic substitution, Eger et al.
//!   NAACL'19) and [`DeepWordBug`] (homoglyph swaps, Gao et al. SPW'18).
//! * **Human-written generator** — [`HumanPerturber`] reproduces the wild
//!   strategies the paper observed: inner-case *emphasis* (`democRATs`),
//!   *hyphenation* (`mus-lim`), *character repetition* (`porrrrn`),
//!   *leet/visual substitution* (`suic1de`), *phonetic substitution*
//!   (`depresxion`) and *censoring* (`s*icide`). It seeds the synthetic
//!   corpora with realistic perturbations and powers the Fig. 4 robustness
//!   comparison.
//!
//! All generators are deterministic functions of a
//! [`SplitMix64`](cryptext_common::SplitMix64) stream.

#![warn(missing_docs)]

pub mod deepwordbug;
pub mod human;
pub mod textbugger;
pub mod viper;

use cryptext_common::SplitMix64;
use cryptext_tokenizer::{splice, tokenize, Token};

pub use deepwordbug::DeepWordBug;
pub use human::{HumanPerturber, Strategy};
pub use textbugger::TextBugger;
pub use viper::Viper;

/// A token-level perturbation generator.
pub trait TokenPerturber {
    /// Short display name ("textbugger", "human", …).
    fn name(&self) -> &'static str;

    /// Produce a perturbed variant of `token`, or `None` when the token is
    /// not perturbable under this generator (too short, no applicable
    /// characters). Must return a string different from `token` when `Some`.
    fn perturb_token(&self, token: &str, rng: &mut SplitMix64) -> Option<String>;
}

/// One replaced token in a perturbed text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Replacement {
    /// Original surface form.
    pub original: String,
    /// Perturbed surface form.
    pub perturbed: String,
    /// Byte span of the original token in the source text.
    pub span: std::ops::Range<usize>,
}

/// Result of perturbing a text at a ratio.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerturbedText {
    /// The rewritten text.
    pub text: String,
    /// What changed, in span order (spans refer to the *original* text).
    pub replacements: Vec<Replacement>,
}

/// Minimum character length for a token to be eligible for perturbation;
/// articles and particles stay intact, matching how humans perturb
/// content words.
pub const MIN_TOKEN_LEN: usize = 3;

/// Is this token eligible for perturbation? Word tokens of at least
/// [`MIN_TOKEN_LEN`] characters (mentions, URLs, hashtags and numbers are
/// never touched).
pub fn is_eligible(token: &Token) -> bool {
    token.is_word() && token.text.chars().count() >= MIN_TOKEN_LEN
}

/// Perturb `ratio` of the eligible tokens of `text` using `perturber`.
///
/// `ratio` is clamped to `[0, 1]`; `⌈ratio · n⌉` tokens are sampled
/// without replacement. Tokens the perturber declines are skipped (they
/// still count against the sample, mirroring the paper's "manipulation
/// ratio r" semantics of *attempted* manipulations).
pub fn perturb_text(
    perturber: &dyn TokenPerturber,
    text: &str,
    ratio: f64,
    rng: &mut SplitMix64,
) -> PerturbedText {
    let tokens = tokenize(text);
    let eligible: Vec<&Token> = tokens.iter().filter(|t| is_eligible(t)).collect();
    if eligible.is_empty() {
        return PerturbedText {
            text: text.to_string(),
            replacements: Vec::new(),
        };
    }
    let n_target =
        ((ratio.clamp(0.0, 1.0) * eligible.len() as f64).ceil() as usize).min(eligible.len());
    let chosen = rng.sample_indices(eligible.len(), n_target);

    let mut replacements: Vec<Replacement> = Vec::with_capacity(n_target);
    for idx in chosen {
        let tok = eligible[idx];
        if let Some(perturbed) = perturber.perturb_token(&tok.text, rng) {
            replacements.push(Replacement {
                original: tok.text.clone(),
                perturbed,
                span: tok.span.clone(),
            });
        }
    }
    replacements.sort_by_key(|r| r.span.start);
    let splices: Vec<(std::ops::Range<usize>, String)> = replacements
        .iter()
        .map(|r| (r.span.clone(), r.perturbed.clone()))
        .collect();
    PerturbedText {
        text: splice(text, &splices),
        replacements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct UpperCaser;
    impl TokenPerturber for UpperCaser {
        fn name(&self) -> &'static str {
            "upper"
        }
        fn perturb_token(&self, token: &str, _rng: &mut SplitMix64) -> Option<String> {
            let up = token.to_ascii_uppercase();
            (up != token).then_some(up)
        }
    }

    #[test]
    fn ratio_zero_keeps_text() {
        let mut rng = SplitMix64::new(1);
        // ceil semantics: ratio 0 still rounds to 0 tokens.
        let out = perturb_text(&UpperCaser, "the dirty republicans", 0.0, &mut rng);
        assert_eq!(out.text, "the dirty republicans");
        assert!(out.replacements.is_empty());
    }

    #[test]
    fn ratio_one_hits_every_eligible_token() {
        let mut rng = SplitMix64::new(1);
        let out = perturb_text(&UpperCaser, "the dirty republicans", 1.0, &mut rng);
        assert_eq!(out.text, "THE DIRTY REPUBLICANS");
        assert_eq!(out.replacements.len(), 3);
    }

    #[test]
    fn mentions_urls_numbers_untouched() {
        let mut rng = SplitMix64::new(2);
        let text = "@potus shared https://x.com/a in 2021 with idiots";
        let out = perturb_text(&UpperCaser, text, 1.0, &mut rng);
        assert!(out.text.contains("@potus"));
        assert!(out.text.contains("https://x.com/a"));
        assert!(out.text.contains("2021"));
        assert!(out.text.contains("IDIOTS"));
        // "in" is below the length floor.
        assert!(out.text.contains(" in "));
    }

    #[test]
    fn replacements_record_spans_of_original() {
        let mut rng = SplitMix64::new(3);
        let text = "bad bad bad";
        let out = perturb_text(&UpperCaser, text, 1.0, &mut rng);
        for r in &out.replacements {
            assert_eq!(&text[r.span.clone()], r.original);
            assert_eq!(r.perturbed, "BAD");
        }
        // Spans sorted.
        assert!(out
            .replacements
            .windows(2)
            .all(|w| w[0].span.start < w[1].span.start));
    }

    #[test]
    fn deterministic_given_seed() {
        let text = "one two three four five six seven eight";
        let a = perturb_text(&UpperCaser, text, 0.5, &mut SplitMix64::new(9));
        let b = perturb_text(&UpperCaser, text, 0.5, &mut SplitMix64::new(9));
        assert_eq!(a, b);
    }

    #[test]
    fn empty_and_ineligible_inputs() {
        let mut rng = SplitMix64::new(4);
        let out = perturb_text(&UpperCaser, "", 0.5, &mut rng);
        assert_eq!(out.text, "");
        let out = perturb_text(&UpperCaser, "a b c 12 34", 1.0, &mut rng);
        assert_eq!(out.text, "a b c 12 34", "no eligible tokens");
    }

    #[test]
    fn partial_ratio_counts_attempts() {
        let mut rng = SplitMix64::new(5);
        let text = "alpha bravo charlie delta echo foxtrot golf hotel india juliet";
        let out = perturb_text(&UpperCaser, text, 0.25, &mut rng);
        // ceil(0.25 * 10) = 3 attempts, all succeed with UpperCaser.
        assert_eq!(out.replacements.len(), 3);
    }
}
