//! Integration: the HTTP/1.1 wire layer over a real loopback socket —
//! the `service_api` semantics re-run end to end over TCP, plus the
//! wire-only contracts no in-process test can see: keep-alive
//! pipelining, torn/partial requests, size limits, the slowloris
//! timeout, the error→status mapping, cache-metadata headers, and the
//! SIGTERM-style drain (zero dropped in-flight responses, flush hook
//! run before the listener closes).
//!
//! CI re-runs this binary with `CRYPTEXT_SHARDS=4` (the fixture builds
//! its backend through `CrypText::from_env`) and runs the filtered
//! `torn_write` test under `CRYPTEXT_FAILPOINTS=http.write=torn@1:8` —
//! that test detects which mode it's in from the first response's
//! bytes, so one test body proves both the clean path and the
//! torn-write arm.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cryptext::common::SimClock;
use cryptext::core::database::TokenDatabase;
use cryptext::core::service::{CryptextService, ServiceConfig};
use cryptext::core::{AnyTokenStore, CrypText};
use cryptext::gateway::{Gateway, GatewayConfig};
use cryptext::http::{HttpConfig, HttpServer, ServeReport, ShutdownHandle};
use cryptext::stream::{SocialPlatform, StreamConfig};

// ---------------------------------------------------------------- fixture

struct Server {
    addr: SocketAddr,
    token: String,
    clock: SimClock,
    gateway: Arc<Gateway<AnyTokenStore>>,
    handle: ShutdownHandle,
    join: Option<JoinHandle<ServeReport>>,
    flush_ran: Arc<AtomicBool>,
}

/// The `service_api` fixture behind a bound-and-serving HTTP server on
/// an ephemeral loopback port.
fn server_with(limit: u32, http: HttpConfig) -> Server {
    let platform = SocialPlatform::simulate(StreamConfig {
        n_posts: 1_200,
        seed: 77,
        ..StreamConfig::default()
    });
    let mut db = TokenDatabase::with_lexicon();
    for post in platform.posts() {
        db.ingest_text(&post.text);
    }
    let clock = SimClock::new(0);
    let svc = Arc::new(CryptextService::new(
        CrypText::from_env(db),
        ServiceConfig {
            rate_limit_per_minute: limit,
            ..ServiceConfig::default()
        },
        Arc::new(clock.clone()),
    ));
    let token = svc.issue_token("wire").as_str().to_string();
    let gateway = Arc::new(Gateway::new(svc, GatewayConfig::default()));
    let server = HttpServer::bind(Arc::clone(&gateway), http, "127.0.0.1:0").expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let flush_ran = Arc::new(AtomicBool::new(false));
    let flush_flag = Arc::clone(&flush_ran);
    let join = std::thread::spawn(move || {
        server.serve_with_flush(move || {
            flush_flag.store(true, Ordering::SeqCst);
            Ok(())
        })
    });
    Server {
        addr,
        token,
        clock,
        gateway,
        handle,
        join: Some(join),
        flush_ran,
    }
}

fn server() -> Server {
    server_with(100_000, HttpConfig::default())
}

impl Server {
    /// Graceful stop: shutdown, join the serve thread, hand back the
    /// report.
    fn finish(mut self) -> ServeReport {
        self.handle.shutdown();
        self.join
            .take()
            .expect("still serving")
            .join()
            .expect("serve thread")
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.handle.shutdown();
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

// ----------------------------------------------------------- tiny client

struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

#[derive(Debug)]
struct Resp {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Resp {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

impl Client {
    fn connect(addr: SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_millis(50)))
            .expect("set client read timeout");
        Client {
            stream,
            buf: Vec::new(),
        }
    }

    fn send(&mut self, raw: &str) {
        self.stream.write_all(raw.as_bytes()).expect("client send");
    }

    /// Pull more bytes; `true` on data, `false` on EOF. Panics if the
    /// wall-clock deadline passes first (a hung test, not a failure
    /// mode under test).
    fn fill(&mut self, deadline: Instant) -> bool {
        let mut chunk = [0u8; 4096];
        loop {
            assert!(Instant::now() < deadline, "client read timed out");
            match self.stream.read(&mut chunk) {
                Ok(0) => return false,
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    return true;
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock
                            | std::io::ErrorKind::TimedOut
                            | std::io::ErrorKind::Interrupted
                    ) =>
                {
                    continue
                }
                Err(e) => panic!("client read: {e}"),
            }
        }
    }

    /// One full response off the stream (headers + `Content-Length`
    /// body); `None` if the peer closed before completing one.
    fn try_read_response(&mut self) -> Option<Resp> {
        let deadline = Instant::now() + Duration::from_secs(20);
        let header_end = loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            if !self.fill(deadline) {
                return None;
            }
        };
        let head = String::from_utf8(self.buf[..header_end].to_vec()).expect("UTF-8 headers");
        let mut lines = head.split("\r\n");
        let status_line = lines.next().expect("status line");
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
        let headers: Vec<(String, String)> = lines
            .filter_map(|l| l.split_once(':'))
            .map(|(n, v)| (n.trim().to_string(), v.trim().to_string()))
            .collect();
        let content_length: usize = headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case("content-length"))
            .and_then(|(_, v)| v.parse().ok())
            .expect("Content-Length on every response");
        self.buf.drain(..header_end + 4);
        while self.buf.len() < content_length {
            if !self.fill(deadline) {
                return None;
            }
        }
        let body_bytes: Vec<u8> = self.buf.drain(..content_length).collect();
        Some(Resp {
            status,
            headers,
            body: String::from_utf8_lossy(&body_bytes).into_owned(),
        })
    }

    fn read_response(&mut self) -> Resp {
        self.try_read_response()
            .expect("connection closed before a full response")
    }

    /// Everything until EOF (for torn-write inspection).
    fn read_to_eof(&mut self) -> Vec<u8> {
        let deadline = Instant::now() + Duration::from_secs(20);
        while self.fill(deadline) {}
        std::mem::take(&mut self.buf)
    }
}

fn get_req(path: &str, token: Option<&str>) -> String {
    let auth = match token {
        Some(t) => format!("Authorization: Bearer {t}\r\n"),
        None => String::new(),
    };
    format!("GET {path} HTTP/1.1\r\nHost: loopback\r\n{auth}\r\n")
}

fn post_req(path: &str, token: &str, body: &str) -> String {
    format!(
        "POST {path} HTTP/1.1\r\nHost: loopback\r\nAuthorization: Bearer {token}\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
}

// ---------------------------------------------------------------- tests

/// The `service_api` happy path, over the wire: Look Up finds hits,
/// Normalization repairs the paper's example, Perturbation answers.
#[test]
fn api_surface_over_the_wire() {
    let srv = server();
    let mut c = Client::connect(srv.addr);

    c.send(&get_req("/lookup?q=vaccine", Some(&srv.token)));
    let resp = c.read_response();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(resp.body.starts_with("{\"hits\":["));
    assert!(resp.body.contains("\"token\":"), "no hits in {}", resp.body);

    c.send(&post_req("/normalize", &srv.token, "the vacc1ne mandate"));
    let resp = c.read_response();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(
        resp.body.contains("\"text\":\"the vaccine mandate\""),
        "normalization over the wire: {}",
        resp.body
    );

    c.send(&post_req(
        "/perturb?seed=42",
        &srv.token,
        "the vaccine mandate",
    ));
    let resp = c.read_response();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(resp.body.contains("\"replacements\":"));

    let report = srv.finish();
    assert_eq!(report.requests_served, 3);
    assert!(report.drain.quiesced);
}

/// Three pipelined requests in one burst answer in order on one
/// connection, and the connection survives for a fourth.
#[test]
fn pipelined_keep_alive_requests_answer_in_order() {
    let srv = server();
    let mut c = Client::connect(srv.addr);

    let burst = format!(
        "{}{}{}",
        get_req("/healthz", None),
        get_req("/lookup?q=vaccine", Some(&srv.token)),
        get_req("/stats", None)
    );
    c.send(&burst);

    let first = c.read_response();
    assert_eq!((first.status, first.body.as_str()), (200, "ok\n"));
    let second = c.read_response();
    assert_eq!(second.status, 200);
    assert!(second.body.starts_with("{\"hits\":["));
    let third = c.read_response();
    assert_eq!(third.status, 200);
    assert!(third.body.contains("\"draining\":false"), "{}", third.body);

    // Still keep-alive: a fourth request on the same connection works.
    c.send(&get_req("/healthz", None));
    assert_eq!(c.read_response().status, 200);
}

/// Malformed request lines are `400` and close; a torn request (client
/// hangs up mid-line) is dropped silently; the listener serves the next
/// connection either way.
#[test]
fn torn_and_malformed_request_lines() {
    let srv = server();

    let mut bad = Client::connect(srv.addr);
    bad.send("NONSENSE\r\n\r\n");
    let resp = bad.read_response();
    assert_eq!(resp.status, 400);
    assert!(bad.read_to_eof().is_empty(), "400 closes the connection");

    let mut version = Client::connect(srv.addr);
    version.send("GET /healthz HTTP/9.9\r\n\r\n");
    assert_eq!(version.read_response().status, 400);

    // A client that dies mid-request-line: nothing to answer.
    let mut torn = Client::connect(srv.addr);
    torn.send("GET /look");
    drop(torn);

    let mut next = Client::connect(srv.addr);
    next.send(&get_req("/healthz", None));
    assert_eq!(next.read_response().status, 200);
}

/// Declared oversized bodies are refused with `413` (before the body is
/// read), oversized header blocks with `431`.
#[test]
fn size_limits_return_413_and_431() {
    let srv = server();

    let mut big_body = Client::connect(srv.addr);
    big_body.send(&format!(
        "POST /normalize HTTP/1.1\r\nHost: loopback\r\nAuthorization: Bearer {}\r\nContent-Length: 300000\r\n\r\n",
        srv.token
    ));
    let resp = big_body.read_response();
    assert_eq!(resp.status, 413);
    assert!(resp.body.contains("body_too_large"));

    let mut big_head = Client::connect(srv.addr);
    big_head.send(&format!(
        "GET /healthz HTTP/1.1\r\nHost: loopback\r\nX-Padding: {}\r\n\r\n",
        "p".repeat(20_000)
    ));
    assert_eq!(big_head.read_response().status, 431);
}

/// A client dribbling a request slower than the header budget gets
/// `408` and a close; an *idle* keep-alive connection just gets closed,
/// no status.
#[test]
fn slowloris_times_out_with_408() {
    let srv = server_with(
        100_000,
        HttpConfig {
            header_timeout_ms: 150,
            ..HttpConfig::default()
        },
    );

    let mut slow = Client::connect(srv.addr);
    slow.send("GET /healthz HTT"); // …and never finishes the line.
    let resp = slow.read_response();
    assert_eq!(resp.status, 408);
    assert!(slow.read_to_eof().is_empty(), "408 closes the connection");

    let mut idle = Client::connect(srv.addr);
    idle.send(&get_req("/healthz", None));
    assert_eq!(idle.read_response().status, 200);
    // Now idle past the budget: silent close, no 408 frame.
    assert!(idle.read_to_eof().is_empty());
}

/// The error→status mapping, end to end: 401/403/404/405/400/504.
#[test]
fn error_statuses_map_the_service_vocabulary() {
    let srv = server();

    let case = |raw: &str| {
        let mut c = Client::connect(srv.addr);
        c.send(raw);
        c.read_response()
    };

    let missing = case(&get_req("/lookup?q=x", None));
    assert_eq!(missing.status, 401);
    assert!(missing.header("WWW-Authenticate").is_some());
    assert!(missing.body.contains("\"error\":\"unauthorized\""));

    let revoked = case(&get_req("/lookup?q=x", Some("cx_bogus_token")));
    assert_eq!(revoked.status, 403, "{}", revoked.body);

    assert_eq!(case(&get_req("/no/such/route", None)).status, 404);

    let wrong_method = case(&get_req("/normalize", Some(&srv.token)));
    assert_eq!(wrong_method.status, 405);
    assert_eq!(wrong_method.header("Allow"), Some("POST"));

    // Service-level validation (k = 9 is out of range) surfaces as 400,
    // same as `service_api`'s InvalidArgument assertion.
    let invalid = case(&get_req("/lookup?q=x&k=9", Some(&srv.token)));
    assert_eq!(invalid.status, 400, "{}", invalid.body);
    assert!(invalid.body.contains("invalid_argument"));

    // A born-expired deadline is deterministic 504 under the frozen
    // simulated clock.
    let expired = case(&get_req(
        "/lookup?q=vaccine&deadline_ms=0",
        Some(&srv.token),
    ));
    assert_eq!(expired.status, 504, "{}", expired.body);
    assert!(expired.body.contains("deadline_exceeded"));
}

/// Rate limiting over the wire mirrors `service_api`: a limit of 5
/// admits exactly 5 of 8, refusals carry `Retry-After`, and the budget
/// refills when the window rolls over.
#[test]
fn rate_limit_maps_to_429_with_retry_after() {
    let srv = server_with(5, HttpConfig::default());

    let shoot = |n: usize| {
        let mut ok = 0;
        let mut limited = 0;
        for _ in 0..n {
            let mut c = Client::connect(srv.addr);
            c.send(&get_req("/lookup?q=vaccine", Some(&srv.token)));
            let resp = c.read_response();
            match resp.status {
                200 => ok += 1,
                429 => {
                    let after: u64 = resp
                        .header("Retry-After")
                        .expect("429 carries Retry-After")
                        .parse()
                        .expect("integer seconds");
                    assert!(after >= 1);
                    assert!(resp.body.contains("rate_limited"), "{}", resp.body);
                    limited += 1;
                }
                other => panic!("unexpected status {other}"),
            }
        }
        (ok, limited)
    };

    assert_eq!(shoot(8), (5, 3));
    srv.clock.advance(60_001);
    assert_eq!(shoot(2), (2, 0));
}

/// Cache metadata rides the response headers: cold fills carry
/// `Age: 0`, repeats are `hit`, Perturb bypasses with `no-store`, and
/// the generation is pinned on every success.
#[test]
fn cache_metadata_headers() {
    let srv = server();
    let mut c = Client::connect(srv.addr);

    c.send(&get_req("/lookup?q=democrats", Some(&srv.token)));
    let cold = c.read_response();
    assert_eq!(cold.status, 200);
    assert_eq!(cold.header("X-Cryptext-Cache"), Some("cold"));
    assert_eq!(cold.header("Age"), Some("0"));
    assert_eq!(cold.header("Cache-Control"), Some("public, max-age=300"));
    let generation = cold
        .header("X-Cryptext-Generation")
        .expect("generation")
        .to_string();

    c.send(&get_req("/lookup?q=democrats", Some(&srv.token)));
    let hit = c.read_response();
    assert_eq!(hit.header("X-Cryptext-Cache"), Some("hit"));
    assert_eq!(hit.header("Age"), None, "hits have unknowable age");
    assert_eq!(
        hit.header("X-Cryptext-Generation"),
        Some(generation.as_str())
    );
    assert_eq!(hit.body, cold.body, "hit serves the leader's exact bytes");

    c.send(&post_req("/perturb?seed=1", &srv.token, "the vaccine"));
    let bypass = c.read_response();
    assert_eq!(bypass.header("X-Cryptext-Cache"), Some("bypass"));
    assert_eq!(bypass.header("Cache-Control"), Some("no-store"));

    let errors = {
        let mut c2 = Client::connect(srv.addr);
        c2.send(&get_req("/lookup?q=x", None));
        c2.read_response()
    };
    assert_eq!(errors.header("Cache-Control"), Some("no-store"));
    assert_eq!(errors.header("X-Cryptext-Cache"), None);
}

/// The SIGTERM-style drain: requests admitted to the gateway when
/// shutdown fires all complete over the wire (zero dropped in-flight
/// responses), the flush hook runs, and the report says quiesced.
#[test]
fn graceful_drain_completes_in_flight_requests() {
    let srv = server();
    let base = srv.gateway.stats().admitted;
    const CLIENTS: usize = 8;

    let mut workers = Vec::new();
    for i in 0..CLIENTS {
        let addr = srv.addr;
        let token = srv.token.clone();
        workers.push(std::thread::spawn(move || {
            let mut c = Client::connect(addr);
            // Distinct texts: no single-flight coalescing, eight real
            // executions in flight.
            c.send(&post_req(
                "/normalize",
                &token,
                &format!("the vacc1ne mandate number {i}"),
            ));
            c.read_response()
        }));
    }

    // All eight admitted (some may already be executing) — now pull the
    // plug mid-traffic.
    let started = Instant::now();
    while srv.gateway.stats().admitted < base + CLIENTS as u64 {
        assert!(
            started.elapsed() < Duration::from_secs(20),
            "requests never reached the gateway"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    let flush_ran = Arc::clone(&srv.flush_ran);
    let report = srv.finish();

    for worker in workers {
        let resp = worker.join().expect("client thread");
        assert_eq!(resp.status, 200, "in-flight request dropped: {}", resp.body);
        assert!(resp.body.contains("\"text\":\"the vaccine mandate number"));
    }
    assert!(report.drain.quiesced, "drain did not quiesce: {report:?}");
    assert!(report.drain.flush_error.is_none());
    assert!(flush_ran.load(Ordering::SeqCst), "flush hook never ran");
    assert!(report.requests_served >= CLIENTS as u64);
}

/// Clean mode: an API response is whole. Armed mode (CI re-runs this
/// exact test under `CRYPTEXT_FAILPOINTS=http.write=torn@1:8`): the
/// response is torn at 8 bytes and the connection dies — but the tear
/// is confined to that connection. Either way the listener keeps
/// serving: health, stats, and fresh connections all answer afterwards.
#[test]
fn torn_write_cannot_poison_the_listener() {
    let srv = server();

    let mut first = Client::connect(srv.addr);
    first.send(&format!(
        "GET /lookup?q=vaccine HTTP/1.1\r\nHost: loopback\r\nAuthorization: Bearer {}\r\nConnection: close\r\n\r\n",
        srv.token
    ));
    let bytes = first.read_to_eof();
    let armed = !String::from_utf8_lossy(&bytes).contains("\r\n\r\n");
    if armed {
        // torn@1:8 — exactly the torn prefix came through, then EOF.
        assert_eq!(bytes.len(), 8, "torn at 8 bytes: {bytes:?}");
        assert!(b"HTTP/1.1 200 OK".starts_with(&bytes[..]));
    } else {
        let text = String::from_utf8_lossy(&bytes);
        assert!(
            text.starts_with("HTTP/1.1 200 OK\r\n"),
            "clean mode: {text}"
        );
        assert!(text.contains("\"hits\":["));
    }

    // The listener is fine: non-API routes never trip the failpoint …
    let mut probe = Client::connect(srv.addr);
    probe.send(&get_req("/healthz", None));
    assert_eq!(probe.read_response().status, 200);
    probe.send(&get_req("/stats", None));
    assert_eq!(probe.read_response().status, 200);

    // … and a second API request on a fresh connection tears again
    // (armed) or succeeds (clean) — its connection's problem alone.
    let mut second = Client::connect(srv.addr);
    second.send(&format!(
        "GET /lookup?q=vaccine HTTP/1.1\r\nHost: loopback\r\nAuthorization: Bearer {}\r\nConnection: close\r\n\r\n",
        srv.token
    ));
    let bytes = second.read_to_eof();
    if armed {
        assert_eq!(bytes.len(), 8);
    } else {
        assert!(String::from_utf8_lossy(&bytes).contains("\"hits\":["));
    }

    let mut after = Client::connect(srv.addr);
    after.send(&get_req("/healthz", None));
    assert_eq!(after.read_response().status, 200, "listener poisoned");
}

/// A minimal Prometheus text-exposition (version 0.0.4) parser: every
/// line must be a comment (`# HELP` / `# TYPE`) or a
/// `name{labels} value` sample; returns the samples keyed by
/// `name{labels}` exactly as rendered.
fn parse_prometheus(body: &str) -> std::collections::HashMap<String, f64> {
    let mut samples = std::collections::HashMap::new();
    for line in body.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix("# ") {
            assert!(
                comment.starts_with("HELP ") || comment.starts_with("TYPE "),
                "unexpected comment line: {line:?}"
            );
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("sample line has no value: {line:?}"));
        let value: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("unparseable sample value: {line:?}"));
        assert!(
            !series.contains(' '),
            "series name has embedded spaces: {line:?}"
        );
        if let Some((_, labels)) = series.split_once('{') {
            assert!(labels.ends_with('}'), "unbalanced labels: {line:?}");
        }
        let prior = samples.insert(series.to_string(), value);
        assert!(prior.is_none(), "duplicate series {series:?}");
    }
    samples
}

/// `GET /metrics` over a real loopback socket: Prometheus text that a
/// strict line parser accepts, served with `no-store`, and counters
/// that equal the exact request mix this test just drove — the same
/// registry every layer records into, scraped over the wire.
#[test]
fn metrics_endpoint_scrapes_the_live_registry() {
    let srv = server();
    let mut c = Client::connect(srv.addr);

    // A known mix: two OK lookups on one key (cold fill + tier-1 hit)
    // and one unauthorized request that never reaches the gateway.
    c.send(&get_req("/lookup?q=vaccine", Some(&srv.token)));
    assert_eq!(c.read_response().status, 200);
    c.send(&get_req("/lookup?q=vaccine", Some(&srv.token)));
    assert_eq!(c.read_response().status, 200);
    c.send(&get_req("/lookup?q=x", None));
    let denied = c.read_response();
    assert_eq!(denied.status, 401);

    c.send(&get_req("/metrics", None));
    let scrape = c.read_response();
    assert_eq!(scrape.status, 200);
    assert_eq!(scrape.header("Cache-Control"), Some("no-store"));
    assert_eq!(
        scrape.header("Content-Type"),
        Some("text/plain; version=0.0.4")
    );

    let samples = parse_prometheus(&scrape.body);

    // Wire layer: per-status counts match the responses asserted above
    // (the scrape renders before counting itself, so /metrics' own 200
    // is not in its body).
    assert_eq!(
        samples["cryptext_http_responses_total{status=\"200\"}"],
        2.0
    );
    assert_eq!(
        samples["cryptext_http_responses_total{status=\"401\"}"],
        1.0
    );
    assert_eq!(samples["cryptext_http_request_us_count"], 3.0);

    // Gateway layer: only the two authorized lookups were admitted, on
    // free slots (no queue waits on any route).
    assert_eq!(samples["cryptext_gateway_admitted_total"], 2.0);
    assert_eq!(samples["cryptext_gateway_completed_ok_total"], 2.0);
    for route in ["lookup", "normalize", "perturb", "listening"] {
        assert_eq!(
            samples[&format!("cryptext_gateway_queue_wait_us_count{{route=\"{route}\"}}")],
            0.0
        );
    }
    assert_eq!(samples["cryptext_gateway_active_now"], 0.0);

    // Cache + engine layers: one cold fill, one tier-1 hit, and the
    // cold execution left stage timings behind.
    assert_eq!(samples["cryptext_cache_misses_total{tier=\"lookup\"}"], 1.0);
    assert_eq!(samples["cryptext_cache_hits_total{tier=\"lookup\"}"], 1.0);
    assert_eq!(samples["cryptext_lookup_encode_us_count"], 1.0);
    assert_eq!(samples["cryptext_lookup_walk_us_count"], 1.0);

    // The wire numbers agree with the in-process registry view (which
    // by now also counted the scrape's own 200).
    let snap = srv.gateway.metrics().snapshot();
    assert_eq!(
        snap.counter_labeled("cryptext_http_responses_total", "status", "200"),
        3
    );
    assert_eq!(snap.counter_total("cryptext_gateway_admitted_total"), 2);
}

/// HTTP/1.0 defaults to close; `GET /stats` is a complete operator
/// report (gateway + cache tiers + draining) without auth.
#[test]
fn http10_close_default_and_stats_surface() {
    let srv = server();

    let mut old = Client::connect(srv.addr);
    old.send("GET /healthz HTTP/1.0\r\n\r\n");
    let resp = old.read_response();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("Connection"), Some("close"));
    assert!(old.read_to_eof().is_empty(), "1.0 connection closed");

    let mut c = Client::connect(srv.addr);
    c.send(&get_req("/lookup?q=vaccine", Some(&srv.token)));
    assert_eq!(c.read_response().status, 200);
    c.send(&get_req("/stats", None));
    let stats = c.read_response();
    assert_eq!(stats.status, 200);
    for field in [
        "\"gateway\":",
        "\"admitted\":",
        "\"cache\":",
        "\"lookup\":",
        "\"generation\":",
        "\"draining\":false",
    ] {
        assert!(
            stats.body.contains(field),
            "missing {field} in {}",
            stats.body
        );
    }
}
