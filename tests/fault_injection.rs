//! Fault-injection smoke: durable streaming ingest under the
//! **environment-driven** failpoint plane.
//!
//! The in-crate crash sweeps (`cryptext-core/src/durable.rs`) arm
//! thread-local failpoints and kill at every caller-thread write boundary.
//! Thread-local arming is invisible on the worker-pool threads the sharded
//! backend persists on, so this test covers the other plane:
//! `CRYPTEXT_FAILPOINTS` is process-global and fires everywhere, worker
//! threads included.
//!
//! Two modes, same code path:
//!
//! * **Unarmed** (plain `cargo test`): the workload runs to completion and
//!   must land byte-identical to an in-memory reference.
//! * **Armed** (CI sets `CRYPTEXT_FAILPOINTS`, e.g. `wal.append=kill@25`):
//!   the workload dies at the injected boundary. The contract under test:
//!   no panic, the error is the injected one, recovery `open` succeeds,
//!   and the recovered state equals the reference after some whole number
//!   of posts — never a half-applied batch. Env failpoints are monotonic
//!   ("a dead process stays dead"), so no further writes are attempted
//!   after the first failure.

use cryptext::common::failpoint;
use cryptext::core::durable::{DurableOptions, DurableTokenStore};
use cryptext::core::{ShardedTokenDatabase, TokenStats, TokenStore};
use cryptext::stream::{SocialPlatform, StreamConfig};

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cryptext-fault-{name}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn posts() -> Vec<String> {
    let platform = SocialPlatform::simulate(StreamConfig {
        n_posts: 90,
        seed: 9,
        ..StreamConfig::default()
    });
    platform.posts().iter().map(|p| p.text.clone()).collect()
}

/// Reference states: `out[k]` is the stats after ingesting the first `k`
/// posts into an ordinary in-memory sharded store.
fn prefix_stats(posts: &[String], shards: usize) -> Vec<TokenStats> {
    let mut db = ShardedTokenDatabase::in_memory(shards);
    let mut out = vec![TokenStore::stats(&db)];
    for p in posts {
        TokenStore::ingest_text(&mut db, p);
        out.push(TokenStore::stats(&db));
    }
    out
}

#[test]
fn durable_ingest_under_env_failpoints_never_corrupts() {
    let armed = std::env::var(failpoint::ENV_VAR).is_ok_and(|v| !v.trim().is_empty());
    let posts = posts();
    let prefixes = prefix_stats(&posts, 2);
    let dir = tmp_dir("ingest");
    let opts = DurableOptions {
        shards: 2,
        sync_every_batch: false,
    };

    let mut dur = match DurableTokenStore::<ShardedTokenDatabase>::open(&dir, opts) {
        Ok(d) => d,
        Err(e) => {
            // An env kill with a tiny threshold can fire inside the very
            // first open (manifest creation). That boundary is covered by
            // the in-crate sweeps; here it just ends the smoke early.
            assert!(
                armed && failpoint::is_injected(&e),
                "clean open failed: {e}"
            );
            return;
        }
    };

    // One batch per post, compacting every 30 posts — the compactions
    // drive the sharded persist across the worker pool, where only the
    // env plane can inject.
    let mut failure: Option<cryptext::common::Error> = None;
    for (i, post) in posts.iter().enumerate() {
        if let Err(e) = dur.try_ingest_text(post) {
            failure = Some(e);
            break;
        }
        if (i + 1) % 30 == 0 {
            if let Err(e) = dur.compact() {
                failure = Some(e);
                break;
            }
        }
    }

    match failure {
        None => {
            assert!(
                !armed || !spec_reachable(),
                "armed run should have hit its failpoint"
            );
            assert_eq!(
                TokenStore::stats(dur.inner()),
                prefixes[posts.len()],
                "unarmed workload lands on the full reference"
            );
        }
        Some(e) => {
            assert!(armed, "unarmed workload must not fail: {e}");
            assert!(failpoint::is_injected(&e), "only injected faults: {e}");
        }
    }
    drop(dur);

    // Recovery must open (it only reads and truncates torn tails — env
    // failpoints sit on write boundaries) and must land on the state
    // after some whole number of posts: a batch is all-or-nothing.
    let dur = DurableTokenStore::<ShardedTokenDatabase>::open(&dir, opts)
        .expect("recovery open never fails");
    let got = TokenStore::stats(dur.inner());
    let k = prefixes.iter().position(|s| *s == got);
    assert!(
        k.is_some(),
        "recovered state is not a whole-post prefix: {got:?}"
    );
    if !armed {
        assert_eq!(k, Some(posts.len()));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Specs aimed at boundaries this workload never crosses (or thresholds
/// beyond its boundary count) legitimately never fire — the smoke only
/// insists on a failure for the names it is known to hit.
fn spec_reachable() -> bool {
    let spec = std::env::var(failpoint::ENV_VAR).unwrap_or_default();
    ["delta.append", "delta.commit", "wal.append", "*"]
        .iter()
        .any(|name| spec.split([';', ',']).any(|p| p.trim().starts_with(name)))
}

#[test]
fn docstore_checkpoint_under_env_failpoints_never_corrupts() {
    use cryptext::docstore::{Database, DbOptions, Document, Filter};

    let dir = tmp_dir("docstore");
    let run = || -> cryptext::common::Result<()> {
        let store = Database::open(&dir, DbOptions::default())?;
        if !store.has_collection("t") {
            store.create_collection("t")?;
        }
        let base = store.len("t")?;
        for i in 0..40i64 {
            store.insert("t", Document::new().with("i", base as i64 + i))?;
        }
        store.checkpoint()?;
        Ok(())
    };
    let armed = std::env::var(failpoint::ENV_VAR).is_ok_and(|v| !v.trim().is_empty());
    match run() {
        Ok(()) => {}
        Err(e) => assert!(armed && failpoint::is_injected(&e), "unexpected: {e}"),
    }

    // Whatever happened, reopening recovers a usable store whose surviving
    // documents are a prefix of the insertion order.
    let store = Database::open(&dir, DbOptions::default()).expect("docstore recovery");
    if store.has_collection("t") {
        let n = store.len("t").unwrap();
        for i in 0..n as i64 {
            assert_eq!(
                store.count("t", &Filter::eq("i", i)).unwrap(),
                1,
                "docs survive in insertion order"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
