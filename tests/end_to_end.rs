//! End-to-end integration: simulate a platform, crawl it, and exercise
//! every CrypText function across crate boundaries.

use cryptext::core::database::TokenDatabase;
use cryptext::core::ingest::Crawler;
use cryptext::core::listening::{ListeningConfig, SocialListener};
use cryptext::core::TokenStore as _;
use cryptext::core::{AnyTokenStore, CrypText, LookupParams, NormalizeParams, PerturbParams};
use cryptext::corpus::Sentiment;
use cryptext::stream::{SocialPlatform, StreamConfig};

/// The system under test runs on the `CRYPTEXT_SHARDS`-selected storage
/// backend (single instance by default; CI re-runs the whole suite with
/// `CRYPTEXT_SHARDS=4` to exercise the consistent-hash sharded path —
/// every assertion below must hold identically on both).
fn pipeline() -> (SocialPlatform, CrypText<AnyTokenStore>) {
    let platform = SocialPlatform::simulate(StreamConfig {
        n_posts: 2_500,
        seed: 4242,
        ..StreamConfig::default()
    });
    let mut db = TokenDatabase::with_lexicon();
    let mut crawler = Crawler::new();
    let stats = crawler.run_once(&platform, &mut db, 0);
    assert_eq!(stats.posts, 2_500);
    (platform, CrypText::from_env(db))
}

#[test]
fn crawl_lookup_normalize_perturb_listen() {
    let (platform, cx) = pipeline();

    // Look Up finds wild perturbations of sensitive words.
    let hits = cx
        .look_up(
            "vaccine",
            LookupParams::paper_default()
                .perturbations_only()
                .observed(),
        )
        .expect("lookup");
    assert!(!hits.is_empty(), "wild perturbations of 'vaccine' found");
    for h in &hits {
        assert!(h.distance >= 1 && h.distance <= 3);
        assert!(h.count > 0, "observed_only respected");
    }

    // Every gold perturbation pair is normalizable back (sampled subset).
    let mut recovered = 0usize;
    let mut checked = 0usize;
    for post in platform.posts().iter().take(400) {
        for rec in &post.perturbations {
            checked += 1;
            let out = cx
                .normalize(&post.text, NormalizeParams::default())
                .expect("normalize");
            let case_only = rec.perturbed.eq_ignore_ascii_case(&rec.original);
            if case_only
                || out.corrections.iter().any(|c| {
                    c.original == rec.perturbed && c.replacement.eq_ignore_ascii_case(&rec.original)
                })
            {
                recovered += 1;
            }
        }
    }
    assert!(checked > 50, "enough gold pairs sampled: {checked}");
    let rate = recovered as f64 / checked as f64;
    assert!(
        rate > 0.7,
        "normalization recovers most gold pairs: {rate:.2}"
    );

    // Perturbation only emits database tokens.
    let out = cx
        .perturb(
            "the democrats discussed the vaccine mandate",
            PerturbParams::with_ratio(1.0),
        )
        .expect("perturb");
    for r in &out.replacements {
        let rec = cx.database().get(&r.replacement).expect("stored token");
        assert!(rec.count > 0, "{} observed in the wild", r.replacement);
    }

    // Social listening aggregates over the same feed.
    let listener = SocialListener::new(cx.database());
    let report = listener
        .watch(&platform, "democrats", &ListeningConfig::default())
        .expect("watch");
    assert!(report.total_posts() > 0);
    assert!(report.perturbation_terms().count() > 0);
}

#[test]
fn perturb_then_normalize_round_trip() {
    let (_, cx) = pipeline();
    let clean = "the democrats and republicans discussed the vaccine mandate";
    let perturbed = cx
        .perturb(clean, PerturbParams::with_ratio(0.5).seeded(3))
        .expect("perturb");
    if perturbed.replacements.is_empty() {
        return; // nothing perturbable in this seed (should not happen)
    }
    assert_ne!(perturbed.text, clean);
    let normalized = cx
        .normalize(&perturbed.text, NormalizeParams::default())
        .expect("normalize");
    // Round trip restores the clean sentence modulo case. Short function
    // words ("the" → "thhe" → "they") are genuinely ambiguous under SMS —
    // allow them to miss, but every content word must come back.
    let clean_words = cryptext::tokenizer::words(clean);
    let restored_words = cryptext::tokenizer::words(&normalized.text);
    assert_eq!(clean_words.len(), restored_words.len());
    for (c, r) in clean_words.iter().zip(&restored_words) {
        if c.len() > 4 {
            assert!(
                c.eq_ignore_ascii_case(r),
                "content word restored: {c} vs {r} (full: {})",
                normalized.text
            );
        }
    }
}

#[test]
fn perturbation_ratio_monotonicity() {
    let (_, cx) = pipeline();
    let text = "the democrats and republicans discussed the vaccine mandate with doctors \
                about depression treatment options";
    let mut counts = Vec::new();
    for ratio in [0.0, 0.25, 0.5, 1.0] {
        let out = cx
            .perturb(text, PerturbParams::with_ratio(ratio).seeded(5))
            .expect("perturb");
        counts.push(out.replacements.len() + out.misses);
    }
    for w in counts.windows(2) {
        assert!(w[0] <= w[1], "attempts grow with ratio: {counts:?}");
    }
}

#[test]
fn listening_shows_negative_skew_for_perturbations() {
    let (platform, cx) = pipeline();
    let listener = SocialListener::new(cx.database());
    let mut base = Vec::new();
    let mut pert = Vec::new();
    for word in ["democrats", "republicans", "vaccine"] {
        let report = listener
            .watch(&platform, word, &ListeningConfig::default())
            .expect("watch");
        if report.terms[0].total > 20 {
            base.push(report.terms[0].overall_negative_fraction());
        }
        for t in report.perturbation_terms().filter(|t| t.total >= 2) {
            pert.push(t.overall_negative_fraction());
        }
    }
    let base_avg: f64 = base.iter().sum::<f64>() / base.len() as f64;
    let pert_avg: f64 = pert.iter().sum::<f64>() / pert.len() as f64;
    assert!(
        pert_avg > base_avg + 0.1,
        "perturbed spellings skew negative: {pert_avg:.2} vs {base_avg:.2}"
    );
    // Sanity: the platform's gold labels agree with the skew.
    let toxic_posts = platform.posts().iter().filter(|p| p.toxic).count();
    assert!(toxic_posts > 0);
    let _ = Sentiment::Negative;
}
