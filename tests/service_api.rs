//! Integration: the public-API facade under realistic multi-client load —
//! auth, rate limits, cache behaviour, bulk endpoints (§III-F).

use std::sync::Arc;

use cryptext::cache::CacheStats;
use cryptext::common::{Error, SimClock};
use cryptext::core::database::TokenDatabase;
use cryptext::core::service::{CryptextService, ServiceConfig};
use cryptext::core::{AnyTokenStore, CrypText, LookupParams, NormalizeParams, PerturbParams};
use cryptext::stream::{SocialPlatform, StreamConfig};

/// The facade under test fronts the `CRYPTEXT_SHARDS`-selected backend
/// (CI re-runs this suite with `CRYPTEXT_SHARDS=4`), so every endpoint is
/// exercised over both the single instance and the sharded store.
fn service(limit: u32) -> (CryptextService<AnyTokenStore>, SimClock) {
    let platform = SocialPlatform::simulate(StreamConfig {
        n_posts: 1_200,
        seed: 77,
        ..StreamConfig::default()
    });
    let mut db = TokenDatabase::with_lexicon();
    for post in platform.posts() {
        db.ingest_text(&post.text);
    }
    let clock = SimClock::new(0);
    let svc = CryptextService::new(
        CrypText::from_env(db),
        ServiceConfig {
            rate_limit_per_minute: limit,
            ..ServiceConfig::default()
        },
        Arc::new(clock.clone()),
    );
    (svc, clock)
}

#[test]
fn full_api_surface_with_one_token() {
    let (svc, _) = service(1_000);
    let token = svc.issue_token("integration");

    let hits = svc
        .look_up(&token, "vaccine", LookupParams::paper_default())
        .unwrap();
    assert!(!hits.is_empty());

    let bulk = svc
        .look_up_bulk(
            &token,
            &["democrats", "republicans", "vaccine"],
            LookupParams::paper_default(),
        )
        .unwrap();
    assert_eq!(bulk.len(), 3);

    let norm = svc
        .normalize(&token, "the vacc1ne mandate", NormalizeParams::default())
        .unwrap();
    assert_eq!(norm.text, "the vaccine mandate");

    let pert = svc
        .perturb(
            &token,
            "the vaccine mandate",
            PerturbParams::with_ratio(1.0),
        )
        .unwrap();
    assert!(pert.replacements.len() + pert.misses > 0);
}

#[test]
fn cache_carries_repeat_traffic() {
    let (svc, _) = service(100_000);
    let token = svc.issue_token("hot");
    let queries = ["democrats", "republicans", "vaccine", "muslim"];
    for _ in 0..50 {
        for q in queries {
            svc.look_up(&token, q, LookupParams::paper_default())
                .unwrap();
        }
    }
    let CacheStats { hits, misses, .. } = svc.cache_stats();
    assert_eq!(misses, queries.len() as u64, "one miss per distinct query");
    assert_eq!(hits, (50 * queries.len() - queries.len()) as u64);
}

#[test]
fn rate_limited_clients_recover_next_window() {
    let (svc, clock) = service(5);
    let token = svc.issue_token("bursty");
    let mut ok = 0;
    let mut limited = 0;
    for _ in 0..8 {
        match svc.look_up(&token, "vaccine", LookupParams::paper_default()) {
            Ok(_) => ok += 1,
            Err(Error::RateLimited { .. }) => limited += 1,
            Err(e) => panic!("unexpected error {e}"),
        }
    }
    assert_eq!((ok, limited), (5, 3));
    clock.advance(60_001);
    assert!(svc
        .look_up(&token, "vaccine", LookupParams::paper_default())
        .is_ok());
}

#[test]
fn concurrent_clients_are_isolated() {
    let (svc, _) = service(200);
    let svc = Arc::new(svc);
    let mut handles = Vec::new();
    for c in 0..6 {
        let svc = Arc::clone(&svc);
        handles.push(std::thread::spawn(move || {
            let token = svc.issue_token(&format!("client{c}"));
            let mut ok = 0;
            for i in 0..100 {
                let q = ["democrats", "vaccine", "republicans"][i % 3];
                if svc
                    .look_up(&token, q, LookupParams::paper_default())
                    .is_ok()
                {
                    ok += 1;
                }
            }
            ok
        }));
    }
    for h in handles {
        assert_eq!(h.join().unwrap(), 100, "each client within its own budget");
    }
}

#[test]
fn invalid_params_surface_as_errors_not_panics() {
    let (svc, _) = service(100);
    let token = svc.issue_token("edge");
    assert!(matches!(
        svc.look_up(&token, "x", LookupParams::new(9, 1)),
        Err(Error::InvalidArgument(_))
    ));
    let bad = NormalizeParams {
        k: 7,
        ..NormalizeParams::default()
    };
    assert!(svc.normalize(&token, "text", bad).is_err());
}
