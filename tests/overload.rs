//! Integration: the service gateway under synthetic overload — shed, not
//! collapse.
//!
//! Every test drives the public `cryptext::gateway` surface over a real
//! `CryptextService` and asserts the robustness contract end to end:
//!
//! * a 10× admission storm sheds the excess *fast* with typed
//!   [`Error::Overloaded`] while the admitted cohort's results stay
//!   byte-identical to a direct service call;
//! * duplicate in-flight requests coalesce to one execution and share the
//!   leader's exact bytes; a retryably-failing leader promotes exactly one
//!   follower; a non-retryable failure broadcasts;
//! * deadlines are respected before, during (mid-store-walk), and after
//!   execution dispatch;
//! * a token revoked while requests sit in the admission queue rejects
//!   them deterministically at dequeue;
//! * rate-limited clients fail fast with a typed, honest
//!   [`Error::RateLimited`] hint — no retry budget is burned on them;
//! * a chaos-armed graceful drain (flush killed by failpoint) still
//!   quiesces in-flight work, sheds new arrivals, and loses zero committed
//!   batches: the durable store reopens to the full committed prefix.
//!
//! CI re-runs this binary under `CRYPTEXT_FAILPOINTS` arms for the
//! gateway's own failpoints (`gateway.execute=delay@1:5`,
//! `gateway.drain.flush=kill@1`). The assertions below hold under those
//! arms by construction: delays only stretch wall-clock time (deadlines in
//! these tests ride a frozen simulated clock), and the drain test expects
//! the flush kill already.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use cryptext::common::{failpoint, Error, SimClock};
use cryptext::core::database::TokenDatabase;
use cryptext::core::durable::{DurableOptions, DurableTokenStore};
use cryptext::core::lookup::LookupHit;
use cryptext::core::service::{CryptextService, ServiceConfig};
use cryptext::core::{CrypText, LookupParams};
use cryptext::gateway::{
    CallOptions, Gateway, GatewayConfig, RouteBudget, RouteClass, SingleFlight,
};

/// Poll cadence for test choreography; matches the gateway's internal
/// wait slice closely enough that conditions are observed promptly.
const TICK: Duration = Duration::from_millis(2);

/// Generous bound for any single choreography step (single-core debug CI).
const STEP_TIMEOUT: Duration = Duration::from_secs(20);

/// Queue-wait observations for one route, read from the workspace
/// metrics registry (the per-route histogram the gateway records into;
/// the snapshot's `queue_waits` is the sum of these counts).
fn queue_waits_on(gw: &Gateway<TokenDatabase>, route: &str) -> u64 {
    gw.metrics().snapshot().histogram_count_labeled(
        "cryptext_gateway_queue_wait_us",
        "route",
        route,
    )
}

/// Spin until `cond` holds or fail the test with `what`.
fn eventually(what: &str, cond: impl Fn() -> bool) {
    let start = Instant::now();
    while !cond() {
        assert!(
            start.elapsed() < STEP_TIMEOUT,
            "timed out waiting for {what}"
        );
        std::thread::sleep(TICK);
    }
}

/// A one-shot gate: request closures park on it so tests can line up
/// admission states before letting any work finish.
struct Latch {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Latch {
    fn new() -> Arc<Self> {
        Arc::new(Latch {
            open: Mutex::new(false),
            cv: Condvar::new(),
        })
    }

    fn open(&self) {
        *self.open.lock().unwrap() = true;
        self.cv.notify_all();
    }

    fn wait(&self) {
        let start = Instant::now();
        let mut open = self.open.lock().unwrap();
        while !*open {
            assert!(start.elapsed() < STEP_TIMEOUT, "latch never opened");
            let (guard, _) = self.cv.wait_timeout(open, TICK).unwrap();
            open = guard;
        }
    }
}

/// A service over a small fixed corpus on a frozen simulated clock, so
/// deadlines never expire unless a test advances time on purpose.
fn test_service(limit: u32) -> (Arc<CryptextService<TokenDatabase>>, SimClock) {
    let mut db = TokenDatabase::in_memory();
    for text in [
        "the dirrty republicans",
        "thee dirty repubLIEcans",
        "the dirty republic@@ns",
        "vaccine vacc1ne vaxxine mandates",
        "democrats demokkkrats dem0crats",
    ] {
        db.ingest_text(text);
    }
    let clock = SimClock::new(0);
    let svc = CryptextService::new(
        CrypText::new(db),
        ServiceConfig {
            rate_limit_per_minute: limit,
            ..ServiceConfig::default()
        },
        Arc::new(clock.clone()),
    );
    (Arc::new(svc), clock)
}

#[test]
fn a_10x_storm_sheds_fast_and_serves_the_admitted_byte_identically() {
    // Lane capacity 4 (2 executing + 2 queued); 40 requests is a 10×
    // storm. The excess 36 must shed immediately with a typed hint; the
    // admitted 4 must see exactly the bytes a direct call returns.
    let (svc, _) = test_service(1_000_000);
    let gw: Arc<Gateway<TokenDatabase>> = Arc::new(Gateway::new(
        Arc::clone(&svc),
        GatewayConfig {
            lookup: RouteBudget::new(2, 2),
            shed_retry_after_ms: 25,
            ..GatewayConfig::default()
        },
    ));
    let auth = svc.issue_token("storm");
    let direct = svc
        .look_up(&auth, "republicans", LookupParams::paper_default())
        .unwrap();

    let latch = Latch::new();
    let mut handles = Vec::new();
    for _ in 0..40 {
        let (gw, auth, latch) = (Arc::clone(&gw), auth.clone(), Arc::clone(&latch));
        handles.push(std::thread::spawn(move || {
            gw.call(
                RouteClass::Lookup,
                &auth,
                CallOptions::default(),
                move |svc, _| {
                    latch.wait();
                    svc.look_up_prechecked(
                        "republicans",
                        LookupParams::paper_default(),
                        &mut || None,
                    )
                },
            )
        }));
    }

    // Saturation point: both execution slots held, both queue seats taken,
    // and all 36 excess arrivals already shed — none of them is waiting.
    eventually("storm saturation", || {
        let s = gw.stats();
        s.shed_queue_full == 36 && s.active_now == 2 && s.queued_now == 2
    });
    latch.open();

    let mut ok = 0;
    let mut shed = 0;
    for h in handles {
        match h.join().unwrap() {
            Ok(hits) => {
                assert_eq!(hits, direct, "admitted result must match the direct call");
                ok += 1;
            }
            Err(Error::Overloaded { retry_after_ms }) => {
                assert_eq!(retry_after_ms, 25, "shed carries the configured hint");
                shed += 1;
            }
            Err(e) => panic!("storm produced an unexpected error: {e}"),
        }
    }
    assert_eq!((ok, shed), (4, 36), "capacity admitted, the excess shed");

    let s = gw.stats();
    assert_eq!(s.admitted, 4);
    assert_eq!(s.completed_ok, 4);
    assert_eq!(
        queue_waits_on(&gw, "lookup"),
        2,
        "both queue seats were eventually served (per-route histogram)"
    );
    assert_eq!(
        s.queue_waits, 2,
        "the snapshot counter projects the same histogram counts"
    );
    assert_eq!(
        s.retries, 0,
        "shed is pre-retry: no budget burned on the excess"
    );
    assert_eq!((s.active_now, s.queued_now), (0, 0));
}

#[test]
fn coalesced_duplicates_execute_once_and_share_exact_bytes() {
    let (svc, _) = test_service(1_000_000);
    let gw: Arc<Gateway<TokenDatabase>> =
        Arc::new(Gateway::new(Arc::clone(&svc), GatewayConfig::default()));
    let auth = svc.issue_token("dup");
    let direct = svc
        .look_up(&auth, "democrats", LookupParams::paper_default())
        .unwrap();

    let flights: Arc<SingleFlight<Vec<LookupHit>>> = Arc::new(SingleFlight::new());
    let latch = Latch::new();
    let mut handles = Vec::new();
    for _ in 0..8 {
        let (gw, auth, latch, flights) = (
            Arc::clone(&gw),
            auth.clone(),
            Arc::clone(&latch),
            Arc::clone(&flights),
        );
        handles.push(std::thread::spawn(move || {
            gw.call_coalesced(
                RouteClass::Lookup,
                0xC0A1E5CE,
                &auth,
                CallOptions::default(),
                &flights,
                move |svc, _| {
                    latch.wait();
                    svc.look_up_prechecked("democrats", LookupParams::paper_default(), &mut || None)
                },
            )
        }));
    }

    // The leader parks on the latch; the other seven must attach to its
    // flight rather than execute.
    eventually("seven followers attached", || {
        gw.stats().coalesced_followers == 7
    });
    latch.open();

    for h in handles {
        let hits = h.join().unwrap().expect("coalesced lookup succeeds");
        assert_eq!(hits, direct, "followers get the leader's exact bytes");
    }
    let s = gw.stats();
    assert_eq!(s.executions, 1, "eight requests, one execution");
    assert_eq!(s.admitted, 8, "every caller was admitted and charged");
    assert_eq!(s.completed_ok, 8);
    assert_eq!(s.promoted_followers, 0);
}

#[test]
fn a_retryably_failing_leader_promotes_exactly_one_follower() {
    let (svc, _) = test_service(1_000_000);
    let gw: Arc<Gateway<TokenDatabase>> =
        Arc::new(Gateway::new(Arc::clone(&svc), GatewayConfig::default()));
    let auth = svc.issue_token("promote");

    let flights: Arc<SingleFlight<u32>> = Arc::new(SingleFlight::new());
    let executions = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::new();
    for _ in 0..2 {
        let (gw, auth, flights, executions) = (
            Arc::clone(&gw),
            auth.clone(),
            Arc::clone(&flights),
            Arc::clone(&executions),
        );
        let gw_for_body = Arc::clone(&gw);
        handles.push(std::thread::spawn(move || {
            gw.call_coalesced(
                RouteClass::Listening,
                7,
                &auth,
                // No self-retries: the leader's failure must surface so the
                // *promotion* path (a follower re-executes) carries the
                // retry, not the leader's own loop.
                CallOptions::default().no_retries(),
                &flights,
                move |_, _| {
                    if executions.fetch_add(1, Ordering::SeqCst) == 0 {
                        // First execution is the leader: hold until the
                        // follower has attached, then fail retryably.
                        let start = Instant::now();
                        while gw_for_body.stats().coalesced_followers == 0 {
                            if start.elapsed() > STEP_TIMEOUT {
                                return Err(Error::Internal("no follower attached".into()));
                            }
                            std::thread::sleep(TICK);
                        }
                        Err(Error::Overloaded { retry_after_ms: 1 })
                    } else {
                        Ok(42)
                    }
                },
            )
        }));
    }

    let mut outcomes: Vec<Result<u32, Error>> =
        handles.into_iter().map(|h| h.join().unwrap()).collect();
    outcomes.sort_by_key(|r| r.is_ok());
    assert!(
        matches!(outcomes[0], Err(Error::Overloaded { .. })),
        "the leader surfaces its own failure: {:?}",
        outcomes[0]
    );
    assert_eq!(
        *outcomes[1].as_ref().unwrap(),
        42,
        "the promoted follower re-executes and succeeds"
    );
    let s = gw.stats();
    assert_eq!(s.coalesced_followers, 1);
    assert_eq!(s.promoted_followers, 1, "exactly one promotion");
    assert_eq!(s.executions, 2, "leader attempt + promoted attempt");
    assert_eq!(executions.load(Ordering::SeqCst), 2);
}

#[test]
fn a_non_retryable_leader_failure_broadcasts_to_the_cohort() {
    let (svc, _) = test_service(1_000_000);
    let gw: Arc<Gateway<TokenDatabase>> =
        Arc::new(Gateway::new(Arc::clone(&svc), GatewayConfig::default()));
    let auth = svc.issue_token("broadcast");

    let flights: Arc<SingleFlight<u32>> = Arc::new(SingleFlight::new());
    let latch = Latch::new();
    let mut handles = Vec::new();
    for _ in 0..3 {
        let (gw, auth, flights, latch) = (
            Arc::clone(&gw),
            auth.clone(),
            Arc::clone(&flights),
            Arc::clone(&latch),
        );
        handles.push(std::thread::spawn(move || {
            // The lookup lane: wide enough (concurrency 8) that all three
            // callers hold permits at once — followers keep their permit
            // while they wait on the leader.
            gw.call_coalesced(
                RouteClass::Lookup,
                9,
                &auth,
                CallOptions::default(),
                &flights,
                move |_, _| -> Result<u32, Error> {
                    latch.wait();
                    Err(Error::InvalidArgument("bad dimensions".into()))
                },
            )
        }));
    }
    eventually("two followers attached", || {
        gw.stats().coalesced_followers == 2
    });
    latch.open();

    for h in handles {
        assert!(
            matches!(h.join().unwrap(), Err(Error::InvalidArgument(_))),
            "a deterministic failure is shared, not re-executed"
        );
    }
    let s = gw.stats();
    assert_eq!(s.executions, 1, "nobody re-runs a non-retryable failure");
    assert_eq!(s.promoted_followers, 0);
    assert_eq!(s.failed, 3);
}

#[test]
fn an_already_expired_deadline_is_rejected_before_any_work() {
    let (svc, _) = test_service(1_000_000);
    let gw: Arc<Gateway<TokenDatabase>> =
        Arc::new(Gateway::new(Arc::clone(&svc), GatewayConfig::default()));
    let auth = svc.issue_token("expired");
    let ran = Arc::new(AtomicUsize::new(0));

    let ran2 = Arc::clone(&ran);
    let out: Result<u32, Error> = gw.call(
        RouteClass::Lookup,
        &auth,
        CallOptions::with_deadline_ms(0),
        move |_, _| {
            ran2.fetch_add(1, Ordering::SeqCst);
            Ok(1)
        },
    );
    assert!(matches!(out, Err(Error::DeadlineExceeded { budget_ms: 0 })));
    assert_eq!(ran.load(Ordering::SeqCst), 0, "the body never ran");
    eventually("slot released", || gw.stats().active_now == 0);
}

#[test]
fn an_expired_deadline_cancels_the_store_walk_mid_flight() {
    // The clock expires *inside* the request body — the cancellable walk
    // must notice via its per-candidate probe and abort with the typed
    // deadline error rather than finishing the scan.
    let (svc, clock) = test_service(1_000_000);
    let gw: Arc<Gateway<TokenDatabase>> =
        Arc::new(Gateway::new(Arc::clone(&svc), GatewayConfig::default()));
    let auth = svc.issue_token("walker");

    let out = gw.call(
        RouteClass::Lookup,
        &auth,
        CallOptions::with_deadline_ms(40).no_retries(),
        move |svc, deadline| {
            // Burn the whole budget before the walk starts; the first
            // probe consulted during the walk then fires.
            clock.advance(40);
            svc.look_up_prechecked("republicans", LookupParams::new(1, 2), &mut || {
                deadline.probe()
            })
        },
    );
    assert!(
        matches!(out, Err(Error::DeadlineExceeded { budget_ms: 40 })),
        "walk aborted mid-flight: {out:?}"
    );
}

#[test]
fn revocation_races_queued_requests_and_rejects_them_at_dequeue() {
    // One slot, two queue seats. A request is mid-execution and two more
    // are queued when the token is revoked: the in-flight one (already
    // authorized) completes; both queued ones hit authorization at
    // dequeue and are rejected deterministically — no panic, no partial
    // result.
    let (svc, _) = test_service(1_000_000);
    let gw: Arc<Gateway<TokenDatabase>> = Arc::new(Gateway::new(
        Arc::clone(&svc),
        GatewayConfig {
            lookup: RouteBudget::new(1, 2),
            ..GatewayConfig::default()
        },
    ));
    let auth = svc.issue_token("revocable");
    let direct = svc
        .look_up(&auth, "vaccine", LookupParams::paper_default())
        .unwrap();

    let latch = Latch::new();
    let mut handles = Vec::new();
    for _ in 0..3 {
        let (gw2, auth2, latch2) = (Arc::clone(&gw), auth.clone(), Arc::clone(&latch));
        handles.push(std::thread::spawn(move || {
            gw2.call(
                RouteClass::Lookup,
                &auth2,
                CallOptions::default(),
                move |svc, _| {
                    latch2.wait();
                    svc.look_up_prechecked("vaccine", LookupParams::paper_default(), &mut || None)
                },
            )
        }));
        // Admit the first request before the others arrive, so exactly
        // one is authorized pre-revocation and two sit in the queue.
        eventually("first request executing", || gw.stats().active_now == 1);
    }
    eventually("two requests queued", || gw.stats().queued_now == 2);

    svc.revoke_token(&auth);
    latch.open();

    let (mut ok, mut unauthorized) = (0, 0);
    for h in handles {
        match h.join().unwrap() {
            Ok(hits) => {
                assert_eq!(hits, direct, "the pre-revocation request is whole");
                ok += 1;
            }
            Err(Error::Unauthorized(_)) => unauthorized += 1,
            Err(e) => panic!("unexpected error in revocation race: {e}"),
        }
    }
    assert_eq!(
        (ok, unauthorized),
        (1, 2),
        "in-flight completes, queued requests reject at dequeue"
    );
    assert_eq!(gw.stats().admitted, 3, "all three passed admission");
    assert_eq!((gw.stats().active_now, gw.stats().queued_now), (0, 0));
}

#[test]
fn rate_limited_requests_fail_fast_with_an_honest_typed_hint() {
    let (svc, clock) = test_service(3);
    let gw: Arc<Gateway<TokenDatabase>> =
        Arc::new(Gateway::new(Arc::clone(&svc), GatewayConfig::default()));
    let auth = svc.issue_token("bursty");

    let (mut ok, mut limited) = (0, 0);
    for _ in 0..5 {
        match gw.look_up(
            &auth,
            "vaccine",
            LookupParams::paper_default(),
            CallOptions::default(),
        ) {
            Ok(_) => ok += 1,
            Err(e @ Error::RateLimited { retry_after_ms }) => {
                // The frozen clock sits at window start: the full window
                // remains, and the hint says exactly that.
                assert_eq!(retry_after_ms, 60_000);
                assert!(e.is_retryable(), "callers may back off and retry");
                limited += 1;
            }
            Err(e) => panic!("unexpected error under rate limiting: {e}"),
        }
    }
    assert_eq!((ok, limited), (3, 2));
    assert_eq!(
        gw.stats().retries,
        0,
        "rate limiting rejects at the auth layer — the gateway must not \
         burn its own retry budget against a depleted window"
    );

    // The hint is honest: advancing exactly one window refills.
    clock.advance(60_000);
    assert!(gw
        .look_up(
            &auth,
            "vaccine",
            LookupParams::paper_default(),
            CallOptions::default(),
        )
        .is_ok());
}

#[test]
fn chaos_drain_quiesces_sheds_and_loses_no_committed_batches() {
    let armed_env = std::env::var(failpoint::ENV_VAR).is_ok_and(|v| !v.trim().is_empty());
    let posts: Vec<String> = (0..30)
        .map(|i| match i % 4 {
            0 => format!("the dirrty republicans round {i}"),
            1 => "thee dirty repubLIEcans".to_string(),
            2 => format!("vacc1ne mandate pushback {i}"),
            _ => "democrats demokkkrats dem0crats".to_string(),
        })
        .collect();

    // Reference: the same posts into a plain in-memory store.
    let mut reference = TokenDatabase::in_memory();
    for p in &posts {
        reference.ingest_text(p);
    }
    let reference = reference.stats();

    // The durable store the drain flush targets: one committed batch per
    // post, fsync deferred so the final flush actually has work to do.
    let dir = std::env::temp_dir().join(format!(
        "cryptext-overload-drain-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut store = DurableTokenStore::<TokenDatabase>::open(
        &dir,
        DurableOptions {
            shards: 1,
            sync_every_batch: false,
        },
    )
    .expect("clean open");
    for p in &posts {
        if let Err(e) = store.try_ingest_text(p) {
            // A broad env arm (e.g. `*=kill@N`) can reach the ingest
            // boundaries; that plane is fault_injection.rs's subject.
            assert!(
                armed_env && failpoint::is_injected(&e),
                "ingest failed: {e}"
            );
            let _ = std::fs::remove_dir_all(&dir);
            return;
        }
    }

    let (svc, _) = test_service(1_000_000);
    let gw: Arc<Gateway<TokenDatabase>> = Arc::new(Gateway::new(
        Arc::clone(&svc),
        GatewayConfig {
            drain_deadline_ms: 15_000,
            ..GatewayConfig::default()
        },
    ));
    let auth = svc.issue_token("ops");

    // One slow request in flight when the drain begins.
    let latch = Latch::new();
    let slow = {
        let (gw, auth, latch) = (Arc::clone(&gw), auth.clone(), Arc::clone(&latch));
        std::thread::spawn(move || {
            gw.call(
                RouteClass::Listening,
                &auth,
                CallOptions::default(),
                move |_, _| {
                    latch.wait();
                    Ok(11u32)
                },
            )
        })
    };
    eventually("slow request in flight", || gw.stats().active_now == 1);

    // A sidecar proves the drain sheds new arrivals *while* it waits for
    // the slow request, then lets that request finish.
    let sidecar = {
        let (gw, auth, latch) = (Arc::clone(&gw), auth.clone(), Arc::clone(&latch));
        std::thread::spawn(move || {
            let start = Instant::now();
            while !gw.is_draining() {
                assert!(start.elapsed() < STEP_TIMEOUT, "drain never began");
                std::thread::sleep(TICK);
            }
            let shed = gw.call(RouteClass::Lookup, &auth, CallOptions::default(), |_, _| {
                Ok(0u32)
            });
            assert!(
                matches!(shed, Err(Error::Overloaded { .. })),
                "arrivals during drain are shed: {shed:?}"
            );
            latch.open();
        })
    };

    // Chaos arm: the flush boundary dies. The drain must still report
    // faithfully — and the store must still recover every committed batch,
    // because batch commits hit the delta log before any flush runs.
    let _guard = failpoint::arm("gateway.drain.flush", "kill@1");
    let report = gw.drain_with(|| store.sync());
    assert!(
        report.quiesced,
        "in-flight work finished under the drain deadline"
    );
    assert_eq!(report.in_flight_at_flush, 0);
    let flush_err = report.flush_error.expect("the armed flush must fail");
    assert!(
        failpoint::is_injected(&flush_err),
        "only the injected fault: {flush_err}"
    );

    assert_eq!(
        slow.join().unwrap().unwrap(),
        11,
        "drain waited for in-flight work"
    );
    sidecar.join().unwrap();
    assert!(gw.stats().shed_draining >= 1);

    // Zero committed-batch loss: reopening lands on the full committed
    // prefix even though the final sync was killed.
    drop(store);
    let reopened = DurableTokenStore::<TokenDatabase>::open(
        &dir,
        DurableOptions {
            shards: 1,
            sync_every_batch: false,
        },
    )
    .expect("recovery open");
    assert_eq!(
        reopened.inner().stats(),
        reference,
        "every committed batch survived the killed flush"
    );
    drop(reopened);
    let _ = std::fs::remove_dir_all(&dir);

    // And the gateway recovers: admissions reopen after the drain.
    gw.end_drain();
    assert!(gw
        .look_up(
            &auth,
            "vaccine",
            LookupParams::paper_default(),
            CallOptions::default(),
        )
        .is_ok());
}

#[test]
fn a_mixed_hit_miss_storm_accounts_queue_waits_only_for_queued_hits() {
    // The tiered result cache sits *behind* admission and single-flight
    // (admission → single-flight → cache → engine), so a warm hit is
    // admitted like any request — it just executes in microseconds. This
    // storm mixes warm hits with a latched cold-key miss and pins the
    // accounting: hits that found a free slot leave no queue-wait marks,
    // hits that physically queued behind the cold leader are counted
    // exactly once, and coalesced followers on the cold key still receive
    // the leader's exact bytes (served on settle, never re-executed).
    let (svc, _) = test_service(1_000_000);
    let gw: Arc<Gateway<TokenDatabase>> = Arc::new(Gateway::new(
        Arc::clone(&svc),
        GatewayConfig {
            lookup: RouteBudget::new(2, 2),
            shed_retry_after_ms: 25,
            ..GatewayConfig::default()
        },
    ));
    let auth = svc.issue_token("mix");

    // Warm two hot keys through the gateway itself (direct service calls
    // would fill the same cache and skew the counts below). Both are
    // engine misses that fill tier-1; the lane is empty, so no waits.
    let hot_r = gw
        .look_up(
            &auth,
            "republicans",
            LookupParams::paper_default(),
            CallOptions::default(),
        )
        .unwrap();
    let hot_d = gw
        .look_up(
            &auth,
            "democrats",
            LookupParams::paper_default(),
            CallOptions::default(),
        )
        .unwrap();
    let warmed = svc.cache_stats();
    assert_eq!((warmed.hits, warmed.misses), (0, 2));
    assert_eq!(queue_waits_on(&gw, "lookup"), 0, "warming found free slots");

    // Cold key: a latched leader occupies one execution slot...
    let flights: Arc<SingleFlight<Vec<LookupHit>>> = Arc::new(SingleFlight::new());
    let latch = Latch::new();
    let cold_caller = |gw: &Arc<Gateway<TokenDatabase>>| {
        let (gw, auth, latch, flights) = (
            Arc::clone(gw),
            auth.clone(),
            Arc::clone(&latch),
            Arc::clone(&flights),
        );
        std::thread::spawn(move || {
            gw.call_coalesced(
                RouteClass::Lookup,
                0x0C01DCA11,
                &auth,
                CallOptions::default(),
                &flights,
                move |svc, _| {
                    latch.wait();
                    svc.look_up_prechecked("vaccine", LookupParams::paper_default(), &mut || None)
                },
            )
        })
    };
    let leader = cold_caller(&gw);
    eventually("cold leader executing", || gw.stats().active_now == 1);

    // ...a duplicate attaches to its flight from the second slot...
    let follower = cold_caller(&gw);
    eventually("cold follower attached", || {
        gw.stats().coalesced_followers == 1
    });

    // ...and two warm hits arrive behind it, one per hot key (distinct
    // coalescing keys, so neither attaches to the other): both must take
    // queue seats — a hit is admitted like any request.
    let warm_caller = |token: &str| {
        let (gw, auth, token) = (Arc::clone(&gw), auth.clone(), token.to_string());
        std::thread::spawn(move || {
            gw.look_up(
                &auth,
                &token,
                LookupParams::paper_default(),
                CallOptions::default(),
            )
        })
    };
    let queued_r = warm_caller("republicans");
    eventually("first warm hit queued", || gw.stats().queued_now == 1);
    let queued_d = warm_caller("democrats");
    eventually("second warm hit queued", || gw.stats().queued_now == 2);

    // Lane saturated (2 executing + 2 queued): further warm hits shed
    // immediately — a cached result does not bypass admission control.
    let shed: Vec<_> = (0..4)
        .map(|i| {
            warm_caller(if i % 2 == 0 {
                "republicans"
            } else {
                "democrats"
            })
        })
        .collect();
    eventually("excess warm hits shed", || gw.stats().shed_queue_full == 4);
    assert_eq!(
        queue_waits_on(&gw, "lookup"),
        0,
        "nothing has finished a queue wait while the leader holds its slot"
    );
    assert_eq!(svc.cache_stats().hits, 0, "queued hits have not executed");

    latch.open();

    // Cold cohort: leader computes once, follower gets the exact bytes.
    let leader_hits = leader.join().unwrap().expect("cold leader succeeds");
    let follower_hits = follower.join().unwrap().expect("cold follower succeeds");
    assert_eq!(
        follower_hits, leader_hits,
        "follower gets the leader's exact bytes on the cold key"
    );

    // Queued warm hits drain through the freed slots and serve from cache.
    assert_eq!(queued_r.join().unwrap().unwrap(), hot_r);
    assert_eq!(queued_d.join().unwrap().unwrap(), hot_d);
    for h in shed {
        match h.join().unwrap() {
            Err(Error::Overloaded { retry_after_ms }) => assert_eq!(retry_after_ms, 25),
            other => panic!("saturated lane must shed: {other:?}"),
        }
    }

    let s = gw.stats();
    assert_eq!(
        queue_waits_on(&gw, "lookup"),
        2,
        "exactly the two queued warm hits are accounted as waits"
    );
    for other in ["normalize", "perturb", "listening"] {
        assert_eq!(
            queue_waits_on(&gw, other),
            0,
            "no waits bleed into the {other} lane"
        );
    }
    assert_eq!(s.queue_waits, 2, "snapshot projection agrees");
    assert_eq!(s.executions, 5, "2 warmups + cold leader + 2 queued hits");
    assert_eq!(s.coalesced_followers, 1);
    assert_eq!(s.promoted_followers, 0);
    assert_eq!(s.admitted, 6, "warmups, cold pair, queued hits");
    assert_eq!(s.completed_ok, 6);
    assert_eq!(s.shed_queue_full, 4);
    assert_eq!((s.active_now, s.queued_now), (0, 0));

    let c = svc.cache_stats();
    assert_eq!(c.misses, 3, "two warmups plus the cold leader");
    assert_eq!(c.hits, 2, "both queued requests served from tier-1");
    assert_eq!(c.inserts, 3);
    let tiers = gw.cache_stats();
    assert_eq!(tiers.lookup.hits, 2);
    assert_eq!(tiers.generation, 0);
}
