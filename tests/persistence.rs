//! Integration: durability of the token database through the embedded
//! document store, including crash-style recovery.

use cryptext::core::database::TokenDatabase;
use cryptext::core::{look_up, LookupParams, ShardedTokenDatabase, TokenStore};
use cryptext::docstore::{Database, DbOptions, Filter};
use cryptext::stream::{SocialPlatform, StreamConfig};

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cryptext-it-{name}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn build_token_db(seed: u64) -> TokenDatabase {
    let platform = SocialPlatform::simulate(StreamConfig {
        n_posts: 800,
        seed,
        ..StreamConfig::default()
    });
    let mut db = TokenDatabase::in_memory();
    for post in platform.posts() {
        db.ingest_text(&post.text);
    }
    db
}

#[test]
fn token_database_survives_store_reopen() {
    let dir = tmp_dir("reopen");
    let db = build_token_db(1);
    let before = db.stats();

    {
        let store = Database::open(&dir, DbOptions::default()).unwrap();
        db.persist_to(&store, "tokens").unwrap();
        store.checkpoint().unwrap();
    }
    // Reopen from disk in a fresh process-like context.
    let store = Database::open(&dir, DbOptions::default()).unwrap();
    let restored = TokenDatabase::load_from(&store, "tokens").unwrap();
    assert_eq!(restored.stats(), before);

    // Queries behave identically after restore.
    let a = look_up(&db, "vaccine", LookupParams::paper_default()).unwrap();
    let b = look_up(&restored, "vaccine", LookupParams::paper_default()).unwrap();
    assert_eq!(a, b);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wal_only_recovery_without_checkpoint() {
    let dir = tmp_dir("wal-only");
    let db = build_token_db(2);
    {
        let store = Database::open(&dir, DbOptions::default()).unwrap();
        db.persist_to(&store, "tokens").unwrap();
        // No checkpoint: recovery must replay the WAL alone.
    }
    let store = Database::open(&dir, DbOptions::default()).unwrap();
    let restored = TokenDatabase::load_from(&store, "tokens").unwrap();
    assert_eq!(restored.stats().unique_tokens, db.stats().unique_tokens);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_wal_tail_loses_at_most_last_record() {
    let dir = tmp_dir("torn");
    {
        let store = Database::open(&dir, DbOptions::default()).unwrap();
        store.create_collection("t").unwrap();
        for i in 0..50i64 {
            store
                .insert("t", cryptext::docstore::Document::new().with("i", i))
                .unwrap();
        }
    }
    // Simulate a crash mid-append.
    let wal = dir.join("wal.log");
    let bytes = std::fs::read(&wal).unwrap();
    std::fs::write(&wal, &bytes[..bytes.len() - 7]).unwrap();

    let store = Database::open(&dir, DbOptions::default()).unwrap();
    let n = store.len("t").unwrap();
    assert_eq!(n, 49, "exactly the torn record lost");
    // The store is fully usable after recovery.
    store
        .insert("t", cryptext::docstore::Document::new().with("i", 99i64))
        .unwrap();
    assert_eq!(store.count("t", &Filter::eq("i", 99i64)).unwrap(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_database_survives_store_reopen() {
    // Per-shard persistence: one collection per shard plus a manifest,
    // reassembled byte-identically across a real disk reopen.
    let dir = tmp_dir("sharded-reopen");
    let flat = build_token_db(4);
    let wide = ShardedTokenDatabase::from_database(&flat, 4);

    {
        let store = Database::open(&dir, DbOptions::default()).unwrap();
        wide.persist_to(&store, "tokens").unwrap();
        store.checkpoint().unwrap();
    }
    let store = Database::open(&dir, DbOptions::default()).unwrap();
    assert_eq!(
        ShardedTokenDatabase::manifest_shards(&store, "tokens").unwrap(),
        Some(4)
    );
    let restored = ShardedTokenDatabase::load_from(&store, "tokens").unwrap();
    assert_eq!(restored.stats(), flat.stats());
    let a = look_up(&flat, "vaccine", LookupParams::paper_default()).unwrap();
    let b = look_up(&restored, "vaccine", LookupParams::paper_default()).unwrap();
    assert_eq!(a, b, "queries identical after sharded restore");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_repersist_with_fewer_shards_replaces_layout() {
    // Regression (replace-not-append): persist with 6 shards, re-persist
    // with 2 under the same name, reopen from disk — only the 2-shard
    // layout may survive, stale shard collections included.
    let dir = tmp_dir("sharded-repersist");
    let flat = build_token_db(5);
    {
        let store = Database::open(&dir, DbOptions::default()).unwrap();
        ShardedTokenDatabase::from_database(&flat, 6)
            .persist_to(&store, "tokens")
            .unwrap();
        ShardedTokenDatabase::from_database(&flat, 2)
            .persist_to(&store, "tokens")
            .unwrap();
    }
    let store = Database::open(&dir, DbOptions::default()).unwrap();
    // Shard collections are generation-tagged (`tokens__g{g}__shard{i}`);
    // exactly one generation — the 2-shard one — may survive the sweep.
    assert_eq!(store.collections_with_prefix("tokens__g").len(), 2);
    let restored = ShardedTokenDatabase::load_from(&store, "tokens").unwrap();
    assert_eq!(restored.num_shards(), 2);
    assert_eq!(restored.stats(), flat.stats());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn single_double_persist_then_load_is_exact() {
    // Regression for the replace semantics of TokenDatabase::persist_to:
    // persisting twice to the same collection must not append.
    let db = build_token_db(6);
    let store = Database::in_memory();
    db.persist_to(&store, "tokens").unwrap();
    db.persist_to(&store, "tokens").unwrap();
    let restored = TokenDatabase::load_from(&store, "tokens").unwrap();
    assert_eq!(restored.stats(), db.stats());
    assert_eq!(
        look_up(&restored, "vaccine", LookupParams::paper_default()).unwrap(),
        look_up(&db, "vaccine", LookupParams::paper_default()).unwrap()
    );
}

#[test]
fn incremental_ingest_after_restore_continues() {
    let dir = tmp_dir("incremental");
    let db = build_token_db(3);
    {
        let store = Database::open(&dir, DbOptions::default()).unwrap();
        db.persist_to(&store, "tokens").unwrap();
        store.checkpoint().unwrap();
    }
    let store = Database::open(&dir, DbOptions::default()).unwrap();
    let mut restored = TokenDatabase::load_from(&store, "tokens").unwrap();
    let before = restored.stats().unique_tokens;
    restored.ingest_text("a brand new zorbified token appears");
    assert!(restored.stats().unique_tokens > before);
    // And persisting again round-trips the grown database.
    restored.persist_to(&store, "tokens").unwrap();
    let again = TokenDatabase::load_from(&store, "tokens").unwrap();
    assert_eq!(again.stats(), restored.stats());
    let _ = std::fs::remove_dir_all(&dir);
}
