//! Integration: the tiered, generation-versioned result cache.
//!
//! Pins the contract of the PR-8 cache hierarchy end to end:
//!
//! * cached vs uncached `look_up` / `normalize` are **byte-identical** —
//!   cold fill, warm hit, and again across a generation bump — for shard
//!   counts 1–8 including a persist/load round trip of the sharded store
//!   (proptest);
//! * TTL expiry (simulated clock) drops entries and the recompute is
//!   byte-identical to the original answer;
//! * a shared tier-2 store serves a fleet of identically-built replicas:
//!   one replica's write-behind becomes another's read-through hit, and a
//!   generation bump flushes the shared namespace;
//! * `cache.shared.put` failpoint arms (`kill@N` / `delay@N:MS` — CI
//!   sweeps this binary under the env plane) break only the tier-2
//!   write-behind: every request still succeeds with identical bytes,
//!   the error is counted, and tier-1 keeps absorbing the traffic.

use std::sync::Arc;

use cryptext::cache::{CacheConfig, CacheStore, SharedCacheStore, SHARED_PUT_FAILPOINT};
use cryptext::common::{failpoint, SimClock};
use cryptext::core::database::TokenDatabase;
use cryptext::core::service::{CryptextService, ServiceConfig};
use cryptext::core::{CrypText, LookupParams, NormalizeParams, ShardedTokenDatabase, TokenStore};
use cryptext::docstore::Database;
use proptest::prelude::*;

/// Is a `CRYPTEXT_FAILPOINTS` env arm active for this process? CI sweeps
/// this binary with `cache.shared.put=kill@N` / `delay@N:MS`; assertions
/// about successful tier-2 writes are gated off under those arms (the
/// byte-identity assertions hold regardless — that is the point).
fn env_arm_active() -> bool {
    std::env::var(failpoint::ENV_VAR).is_ok_and(|v| !v.trim().is_empty())
}

fn corpus_db(sentences: &[&str]) -> TokenDatabase {
    let mut db = TokenDatabase::in_memory();
    for s in sentences {
        db.ingest_text(s);
    }
    db
}

const FIXTURE: &[&str] = &[
    "the dirrty republicans",
    "thee dirty repubLIEcans",
    "the dirty republic@@ns",
    "vaccine vacc1ne vaxxine mandates",
    "democrats demokkkrats dem0crats",
];

fn fixture_service(ttl_ms: u64) -> (CryptextService<TokenDatabase>, SimClock) {
    let clock = SimClock::new(0);
    let svc = CryptextService::new(
        CrypText::new(corpus_db(FIXTURE)),
        ServiceConfig {
            rate_limit_per_minute: 1_000_000,
            cache_ttl_ms: ttl_ms,
            ..ServiceConfig::default()
        },
        Arc::new(clock.clone()),
    );
    (svc, clock)
}

proptest! {
    /// The tentpole pin: for any small corpus, any shard count 1–8, and a
    /// persist/load round trip of the sharded store, the service's cached
    /// `look_up` and `normalize` answers are byte-identical to the bare
    /// engine's — on the cold fill, on the warm hit, and again on both
    /// sides of a generation bump. Out-of-vocabulary queries ride along so
    /// the negative-cache path is pinned too.
    #[test]
    fn cached_results_are_byte_identical_across_generations_and_shards(
        tokens in proptest::collection::vec("[a-e1@O]{2,9}", 3..18),
        shards in 1usize..=8,
        k in 0usize..=2,
        d in 1usize..=3,
    ) {
        let mut flat = TokenDatabase::in_memory();
        for line in tokens.chunks(3) {
            flat.ingest_text(&line.join(" "));
        }

        // Persist the resharded store and load it twice: one copy feeds
        // the uncached reference engine, the other the caching service.
        // Both train their LM from the same recovered clean sentences, so
        // any divergence below is the cache's fault alone.
        let docs = Database::in_memory();
        ShardedTokenDatabase::from_database(&flat, shards).persist_to(&docs, "tokens").unwrap();
        let engine = CrypText::with_store(ShardedTokenDatabase::load_from(&docs, "tokens").unwrap());
        let svc = CryptextService::new(
            CrypText::with_store(ShardedTokenDatabase::load_from(&docs, "tokens").unwrap()),
            ServiceConfig { rate_limit_per_minute: 1_000_000, ..ServiceConfig::default() },
            Arc::new(SimClock::new(0)),
        );
        let auth = svc.issue_token("prop");

        let params = LookupParams::new(k, d);
        let mut queries: Vec<&str> = tokens.iter().take(4).map(|s| s.as_str()).collect();
        queries.push("zzqzz"); // never ingested: exercises negative caching
        let text = queries.join(" ");
        let norm_params = NormalizeParams { k, d, ..NormalizeParams::default() };

        for round in 0..2 {
            for q in &queries {
                let expected = engine.look_up(q, params).unwrap();
                let cold = svc.look_up(&auth, q, params).unwrap();
                let warm = svc.look_up(&auth, q, params).unwrap();
                prop_assert_eq!(&cold, &expected, "cold lookup, round {}", round);
                prop_assert_eq!(&warm, &expected, "warm lookup, round {}", round);
            }
            let expected = engine.normalize(&text, norm_params).unwrap();
            let cold = svc.normalize(&auth, &text, norm_params).unwrap();
            let warm = svc.normalize(&auth, &text, norm_params).unwrap();
            prop_assert_eq!(&cold, &expected, "cold normalize, round {}", round);
            prop_assert_eq!(&warm, &expected, "warm normalize, round {}", round);

            // Round 1 replays everything against the bumped generation:
            // the flushed caches must refill to the same bytes.
            svc.bump_generation();
        }

        let tiers = svc.cache_tier_stats();
        prop_assert!(tiers.lookup.hits > 0, "warm lookups hit tier-1");
        prop_assert!(tiers.normalize.inserts > 0, "normalize filled tier-1");
        prop_assert_eq!(tiers.generation, 2);
        prop_assert_eq!(tiers.invalidation_bumps, 2);
    }
}

#[test]
fn ttl_expiry_drops_entries_and_recomputes_identically() {
    let (svc, clock) = fixture_service(10_000);
    let auth = svc.issue_token("ttl");
    let params = LookupParams::paper_default();

    let hits = svc.look_up(&auth, "republicans", params).unwrap();
    let norm = svc
        .normalize(&auth, "the vacc1ne mandates", NormalizeParams::default())
        .unwrap();
    let filled = svc.cache_tier_stats();
    assert!(filled.lookup.inserts >= 1 && filled.normalize.inserts >= 1);

    // Past the TTL, an eager sweep reaps every tier-1 entry...
    clock.advance(10_001);
    assert!(
        svc.sweep_caches() >= 2,
        "expired lookup and normalize entries are reaped"
    );
    assert!(
        svc.cache_tier_stats().lookup.expirations + svc.cache_tier_stats().normalize.expirations
            >= 2
    );

    // ...and the recompute answers with the exact same bytes.
    assert_eq!(svc.look_up(&auth, "republicans", params).unwrap(), hits);
    assert_eq!(
        svc.normalize(&auth, "the vacc1ne mandates", NormalizeParams::default())
            .unwrap(),
        norm
    );
}

#[test]
fn shared_tier2_serves_replicas_and_generation_bump_flushes_the_namespace() {
    // Two identically-built replicas pointed at one shared store: their
    // content-derived namespace matches, so one replica's write-behind is
    // the other's read-through hit. The store uses the replicas' own
    // simulated clock so nothing expires mid-test.
    let clock = SimClock::new(0);
    let store = Arc::new(SharedCacheStore::new(
        CacheConfig::default(),
        Arc::new(clock.clone()),
    ));
    let build = || {
        let mut svc = CryptextService::new(
            CrypText::new(corpus_db(FIXTURE)),
            ServiceConfig {
                rate_limit_per_minute: 1_000_000,
                ..ServiceConfig::default()
            },
            Arc::new(clock.clone()),
        );
        svc.attach_tier2(Arc::clone(&store) as Arc<_>);
        svc
    };
    let (a, b) = (build(), build());
    let (auth_a, auth_b) = (a.issue_token("a"), b.issue_token("b"));
    let text = "the vacc1ne mandates demokkkrats";

    let via_a = a
        .normalize(&auth_a, text, NormalizeParams::default())
        .unwrap();
    let via_b = b
        .normalize(&auth_b, text, NormalizeParams::default())
        .unwrap();
    assert_eq!(via_b, via_a, "replica B answers with replica A's bytes");
    if !env_arm_active() {
        assert!(
            store.stats().inserts > 0,
            "replica A wrote its candidates behind"
        );
        assert!(
            store.stats().hits > 0,
            "replica B read replica A's entries through"
        );
    }

    // A generation bump on one replica flushes the *shared* namespace;
    // the other replica (bumped in lockstep, as ingest does) recomputes
    // from the engines — to the same bytes.
    a.bump_generation();
    b.bump_generation();
    if !env_arm_active() {
        assert!(
            a.cache_tier_stats().tier2.invalidated > 0,
            "namespace flush reached tier-2"
        );
    }
    assert_eq!(
        b.normalize(&auth_b, text, NormalizeParams::default())
            .unwrap(),
        via_a,
        "post-bump recompute is byte-identical"
    );
}

#[test]
fn tier2_write_failures_never_break_requests() {
    // The write-behind to tier-2 is fire-and-forget: under a `kill` arm on
    // `cache.shared.put` (thread-local here; CI repeats it through the env
    // plane) every request still succeeds byte-identically, the failure is
    // counted, and tier-1 keeps serving warm hits.
    let clock = SimClock::new(0);
    let store = Arc::new(SharedCacheStore::new(
        CacheConfig::default(),
        Arc::new(clock.clone()),
    ));
    let mut svc = CryptextService::new(
        CrypText::new(corpus_db(FIXTURE)),
        ServiceConfig {
            rate_limit_per_minute: 1_000_000,
            ..ServiceConfig::default()
        },
        Arc::new(clock.clone()),
    );
    svc.attach_tier2(Arc::clone(&store) as Arc<_>);
    let auth = svc.issue_token("chaos");

    let reference = {
        let engine = CrypText::new(corpus_db(FIXTURE));
        engine
            .normalize("the vacc1ne mandates", NormalizeParams::default())
            .unwrap()
    };

    let _guard = failpoint::arm(SHARED_PUT_FAILPOINT, "kill@1");
    let cold = svc
        .normalize(&auth, "the vacc1ne mandates", NormalizeParams::default())
        .unwrap();
    let warm = svc
        .normalize(&auth, "the vacc1ne mandates", NormalizeParams::default())
        .unwrap();
    assert_eq!(cold, reference, "a killed write-behind never alters bytes");
    assert_eq!(warm, reference);

    let tiers = svc.cache_tier_stats();
    assert!(
        tiers.tier2.put_errors >= 1,
        "the injected failure is counted"
    );
    assert_eq!(tiers.tier2.inserts, 0, "nothing landed in tier-2");
    assert!(
        tiers.normalize_results.hits > 0,
        "tier-1 still absorbs the warm traffic (exact repeat = result-cache hit)"
    );
}
